//! Reference implementations preserved verbatim as the *before* side of the
//! `bench_placer` comparisons. They must produce exactly the same results as
//! the current implementations — the bench binary asserts it — so the
//! speedup numbers compare identical work.
//!
//! Two generations are kept:
//!
//! * the pre-dense-data-plane (PR 2) versions of
//!   [`eval::place_standard_cells`] and [`eval::total_hpwl`]
//!   ([`place_standard_cells_hashmap`], [`total_hpwl_hashmap`]: per-cell
//!   `HashMap` stores, per-net `Vec` walks),
//! * the pre-evaluation-session (PR 3) one-shot pipeline
//!   ([`evaluate_placement_reference`]: the dense placer with the
//!   rescan-every-pin Gauss–Seidel sweep, plus a per-net-`Vec` `NetGraph` and
//!   a fresh `SeqGraph` per call — what `eval::evaluate_placement` did before
//!   the reused [`eval::Evaluator`] existed).

use eval::{CellPlacement, EvalConfig, Hpwl, PlacementMetrics, PlacerConfig};
use geometry::{Orientation, Point, Rect};
use graphs::seqgraph::SeqGraphConfig;
use graphs::{NetGraph, SeqGraph};
use netlist::design::{CellId, CellKind, Design};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// The pre-refactor standard-cell placer: every per-cell datum in a
/// `HashMap<CellId, …>`, every net walk through the `Cell`/`Net` `Vec`s.
pub fn place_standard_cells_hashmap(
    design: &Design,
    macro_placement: &HashMap<CellId, (Point, Orientation)>,
    config: &PlacerConfig,
) -> HashMap<CellId, Point> {
    let die = design.die();
    let die_center = die.center();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    let mut positions: HashMap<CellId, Point> = HashMap::with_capacity(design.num_cells());
    let mut is_fixed: HashMap<CellId, bool> = HashMap::with_capacity(design.num_cells());
    let mut macro_rects: Vec<Rect> = Vec::new();
    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            let (loc, orient) =
                macro_placement.get(&id).copied().unwrap_or((die_center, Orientation::N));
            let (w, h) = orient.transformed_size(cell.width, cell.height);
            let rect = Rect::from_size(loc.x, loc.y, w, h);
            positions.insert(id, rect.center());
            macro_rects.push(rect);
            is_fixed.insert(id, true);
        } else {
            is_fixed.insert(id, false);
        }
    }

    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            continue;
        }
        let mut sum = (0i128, 0i128);
        let mut count = 0i128;
        for &net in cell.fanin.iter().chain(cell.fanout.iter()) {
            let n = design.net(net);
            if let Some(d) = n.driver_cell {
                if let Some(&p) = positions.get(&d) {
                    sum.0 += p.x as i128;
                    sum.1 += p.y as i128;
                    count += 1;
                }
            }
            if let Some(p) = n.driver_port {
                if let Some(pos) = design.port(p).position {
                    sum.0 += pos.x as i128;
                    sum.1 += pos.y as i128;
                    count += 1;
                }
            }
        }
        let base = if count > 0 {
            Point::new((sum.0 / count) as i64, (sum.1 / count) as i64)
        } else {
            die_center
        };
        let jitter_x = rng.gen_range(-(die.width() / 64).max(1)..=(die.width() / 64).max(1));
        let jitter_y = rng.gen_range(-(die.height() / 64).max(1)..=(die.height() / 64).max(1));
        positions.insert(id, die.clamp_point(base.translated(jitter_x, jitter_y)));
    }

    for _ in 0..config.iterations {
        for (id, cell) in design.cells() {
            if is_fixed[&id] {
                continue;
            }
            let mut sum = (0i128, 0i128);
            let mut count = 0i128;
            for &net in cell.fanin.iter().chain(cell.fanout.iter()) {
                let n = design.net(net);
                let mut add = |p: Point| {
                    sum.0 += p.x as i128;
                    sum.1 += p.y as i128;
                    count += 1;
                };
                if let Some(d) = n.driver_cell {
                    if d != id {
                        add(positions[&d]);
                    }
                }
                for &s in &n.sink_cells {
                    if s != id {
                        add(positions[&s]);
                    }
                }
                if let Some(p) = n.driver_port {
                    if let Some(pos) = design.port(p).position {
                        add(pos);
                    }
                }
                for &p in &n.sink_ports {
                    if let Some(pos) = design.port(p).position {
                        add(pos);
                    }
                }
            }
            if count > 0 {
                let target = Point::new((sum.0 / count) as i64, (sum.1 / count) as i64);
                positions.insert(id, die.clamp_point(target));
            }
        }
    }

    spread_hashmap(design, &mut positions, &is_fixed, &macro_rects, config);
    positions
}

fn spread_hashmap(
    design: &Design,
    positions: &mut HashMap<CellId, Point>,
    is_fixed: &HashMap<CellId, bool>,
    macro_rects: &[Rect],
    config: &PlacerConfig,
) {
    let die = design.die();
    let bins = config.bins.max(2);
    let bin_w = (die.width() as f64 / bins as f64).max(1.0);
    let bin_h = (die.height() as f64 / bins as f64).max(1.0);
    let bin_area = bin_w * bin_h;

    let mut capacity = vec![vec![0.0f64; bins]; bins];
    for (bx, row) in capacity.iter_mut().enumerate() {
        for (by, cap) in row.iter_mut().enumerate() {
            let bin_rect = Rect::new(
                die.llx + (bx as f64 * bin_w) as i64,
                die.lly + (by as f64 * bin_h) as i64,
                die.llx + ((bx + 1) as f64 * bin_w) as i64,
                die.lly + ((by + 1) as f64 * bin_h) as i64,
            );
            let macro_overlap: f64 =
                macro_rects.iter().map(|m| m.overlap_area(&bin_rect) as f64).sum();
            *cap = ((bin_area - macro_overlap) * config.target_utilization).max(0.0);
        }
    }

    let bin_of = |p: Point| -> (usize, usize) {
        let bx = (((p.x - die.llx) as f64 / bin_w) as usize).min(bins - 1);
        let by = (((p.y - die.lly) as f64 / bin_h) as usize).min(bins - 1);
        (bx, by)
    };

    for _ in 0..config.spreading_passes {
        let mut usage = vec![vec![0.0f64; bins]; bins];
        let mut members: HashMap<(usize, usize), Vec<CellId>> = HashMap::new();
        for (id, cell) in design.cells() {
            if is_fixed[&id] {
                continue;
            }
            let b = bin_of(positions[&id]);
            usage[b.0][b.1] += cell.area() as f64;
            members.entry(b).or_default().push(id);
        }
        let mut moved_any = false;
        for bx in 0..bins {
            for by in 0..bins {
                let over = usage[bx][by] - capacity[bx][by];
                if over <= 0.0 {
                    continue;
                }
                let Some(cells) = members.get(&(bx, by)) else { continue };
                let mut cells = cells.clone();
                cells.sort_by_key(|&c| design.cell(c).area());
                let mut to_free = over;
                for cell in cells {
                    if to_free <= 0.0 {
                        break;
                    }
                    if let Some((tx, ty)) = nearest_bin_with_room(&usage, &capacity, bins, bx, by) {
                        let target_center = Point::new(
                            die.llx + ((tx as f64 + 0.5) * bin_w) as i64,
                            die.lly + ((ty as f64 + 0.5) * bin_h) as i64,
                        );
                        let area = design.cell(cell).area() as f64;
                        usage[bx][by] -= area;
                        usage[tx][ty] += area;
                        to_free -= area;
                        positions.insert(cell, die.clamp_point(target_center));
                        moved_any = true;
                    } else {
                        break;
                    }
                }
            }
        }
        if !moved_any {
            break;
        }
    }
}

fn nearest_bin_with_room(
    usage: &[Vec<f64>],
    capacity: &[Vec<f64>],
    bins: usize,
    bx: usize,
    by: usize,
) -> Option<(usize, usize)> {
    for radius in 1..bins {
        let mut best: Option<(f64, (usize, usize))> = None;
        let lo_x = bx.saturating_sub(radius);
        let hi_x = (bx + radius).min(bins - 1);
        let lo_y = by.saturating_sub(radius);
        let hi_y = (by + radius).min(bins - 1);
        for tx in lo_x..=hi_x {
            for ty in lo_y..=hi_y {
                if tx.abs_diff(bx).max(ty.abs_diff(by)) != radius {
                    continue;
                }
                let room = capacity[tx][ty] - usage[tx][ty];
                if room > 0.0 {
                    let d = (tx.abs_diff(bx) + ty.abs_diff(by)) as f64;
                    if best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
                        best = Some((d, (tx, ty)));
                    }
                }
            }
        }
        if let Some((_, b)) = best {
            return Some(b);
        }
    }
    None
}

/// The pre-session dense standard-cell placer, preserved verbatim: the same
/// dense id-indexed stores as [`eval::place_standard_cells`], but with the
/// Gauss–Seidel sweep rescanning every pin of every incident net per cell
/// (Σ degree² pin visits per iteration) instead of maintaining per-net
/// running sums. Bit-identical output — the sums are exact integers, so the
/// traversal order never affects the result.
pub fn place_standard_cells_rescan(
    design: &Design,
    macro_placement: &HashMap<CellId, (Point, Orientation)>,
    config: &PlacerConfig,
) -> CellPlacement {
    let die = design.die();
    let die_center = die.center();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let csr = design.connectivity();
    let n = design.num_cells();

    let mut pos: Vec<Point> = vec![die_center; n];
    let mut is_fixed: Vec<bool> = vec![false; n];
    let area: Vec<i128> = design.cells().map(|(_, c)| c.area()).collect();
    let port_pos: Vec<Option<Point>> = design.ports().map(|(_, p)| p.position).collect();

    let mut macro_rects: Vec<Rect> = Vec::new();
    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            let (loc, orient) =
                macro_placement.get(&id).copied().unwrap_or((die_center, Orientation::N));
            let (w, h) = orient.transformed_size(cell.width, cell.height);
            let rect = Rect::from_size(loc.x, loc.y, w, h);
            pos[id.0 as usize] = rect.center();
            macro_rects.push(rect);
            is_fixed[id.0 as usize] = true;
        }
    }

    let mut placed: Vec<bool> = is_fixed.clone();
    for (id, cell) in design.cells() {
        if cell.kind == CellKind::Macro {
            continue;
        }
        let mut sum = (0i128, 0i128);
        let mut count = 0i128;
        for &net in csr.nets_of(id) {
            for &pin in csr.pins(net) {
                if !pin.is_driver() {
                    continue;
                }
                if let Some(d) = pin.cell() {
                    if placed[d.0 as usize] {
                        let p = pos[d.0 as usize];
                        sum.0 += p.x as i128;
                        sum.1 += p.y as i128;
                        count += 1;
                    }
                } else if let Some(p) = pin.port().and_then(|p| port_pos[p.0 as usize]) {
                    sum.0 += p.x as i128;
                    sum.1 += p.y as i128;
                    count += 1;
                }
            }
        }
        let base = if count > 0 {
            Point::new((sum.0 / count) as i64, (sum.1 / count) as i64)
        } else {
            die_center
        };
        let jitter_x = rng.gen_range(-(die.width() / 64).max(1)..=(die.width() / 64).max(1));
        let jitter_y = rng.gen_range(-(die.height() / 64).max(1)..=(die.height() / 64).max(1));
        pos[id.0 as usize] = die.clamp_point(base.translated(jitter_x, jitter_y));
        placed[id.0 as usize] = true;
    }

    for _ in 0..config.iterations {
        for id in 0..n {
            if is_fixed[id] {
                continue;
            }
            let mut sum = (0i128, 0i128);
            let mut count = 0i128;
            for &net in csr.nets_of(CellId(id as u32)) {
                for &pin in csr.pins(net) {
                    if let Some(c) = pin.cell() {
                        if c.0 as usize != id {
                            let p = pos[c.0 as usize];
                            sum.0 += p.x as i128;
                            sum.1 += p.y as i128;
                            count += 1;
                        }
                    } else if let Some(p) = pin.port().and_then(|p| port_pos[p.0 as usize]) {
                        sum.0 += p.x as i128;
                        sum.1 += p.y as i128;
                        count += 1;
                    }
                }
            }
            if count > 0 {
                let target = Point::new((sum.0 / count) as i64, (sum.1 / count) as i64);
                pos[id] = die.clamp_point(target);
            }
        }
    }

    spread_dense(die, &mut pos, &is_fixed, &area, &macro_rects, config);
    CellPlacement { positions: pos.into_iter().map(Some).collect() }
}

/// The spreading phase of the pre-session dense placer (identical to the
/// current one — spreading was never the bottleneck).
fn spread_dense(
    die: Rect,
    pos: &mut [Point],
    is_fixed: &[bool],
    area: &[i128],
    macro_rects: &[Rect],
    config: &PlacerConfig,
) {
    let bins = config.bins.max(2);
    let bin_w = (die.width() as f64 / bins as f64).max(1.0);
    let bin_h = (die.height() as f64 / bins as f64).max(1.0);
    let bin_area = bin_w * bin_h;

    let mut capacity = vec![vec![0.0f64; bins]; bins];
    for (bx, row) in capacity.iter_mut().enumerate() {
        for (by, cap) in row.iter_mut().enumerate() {
            let bin_rect = Rect::new(
                die.llx + (bx as f64 * bin_w) as i64,
                die.lly + (by as f64 * bin_h) as i64,
                die.llx + ((bx + 1) as f64 * bin_w) as i64,
                die.lly + ((by + 1) as f64 * bin_h) as i64,
            );
            let macro_overlap: f64 =
                macro_rects.iter().map(|m| m.overlap_area(&bin_rect) as f64).sum();
            *cap = ((bin_area - macro_overlap) * config.target_utilization).max(0.0);
        }
    }

    let bin_of = |p: Point| -> (usize, usize) {
        let bx = (((p.x - die.llx) as f64 / bin_w) as usize).min(bins - 1);
        let by = (((p.y - die.lly) as f64 / bin_h) as usize).min(bins - 1);
        (bx, by)
    };

    for _ in 0..config.spreading_passes {
        let mut usage = vec![vec![0.0f64; bins]; bins];
        let mut members: Vec<Vec<CellId>> = vec![Vec::new(); bins * bins];
        for id in 0..pos.len() {
            if is_fixed[id] {
                continue;
            }
            let b = bin_of(pos[id]);
            usage[b.0][b.1] += area[id] as f64;
            members[b.0 * bins + b.1].push(CellId(id as u32));
        }
        let mut moved_any = false;
        for bx in 0..bins {
            for by in 0..bins {
                let over = usage[bx][by] - capacity[bx][by];
                if over <= 0.0 {
                    continue;
                }
                let mut cells = members[bx * bins + by].clone();
                cells.sort_by_key(|&c| area[c.0 as usize]);
                let mut to_free = over;
                for cell in cells {
                    if to_free <= 0.0 {
                        break;
                    }
                    if let Some((tx, ty)) = nearest_bin_with_room(&usage, &capacity, bins, bx, by) {
                        let target_center = Point::new(
                            die.llx + ((tx as f64 + 0.5) * bin_w) as i64,
                            die.lly + ((ty as f64 + 0.5) * bin_h) as i64,
                        );
                        let cell_area = area[cell.0 as usize] as f64;
                        usage[bx][by] -= cell_area;
                        usage[tx][ty] += cell_area;
                        to_free -= cell_area;
                        pos[cell.0 as usize] = die.clamp_point(target_center);
                        moved_any = true;
                    } else {
                        break;
                    }
                }
            }
        }
        if !moved_any {
            break;
        }
    }
}

/// The pre-session one-shot evaluation pipeline, preserved verbatim: the
/// rescan-sweep placer, plus a per-net-`Vec` `NetGraph` and a fresh
/// `SeqGraph` rebuilt on every call — exactly what `evaluate_placement` did
/// before the reused [`eval::Evaluator`] session existed. Metrics are
/// bit-identical to `Evaluator::evaluate`; the bench binary asserts it.
pub fn evaluate_placement_reference(
    design: &Design,
    macro_placement: &HashMap<CellId, (Point, Orientation)>,
    config: &EvalConfig,
) -> PlacementMetrics {
    let cell_placement = place_standard_cells_rescan(design, macro_placement, &config.placer);
    let hpwl = eval::total_hpwl(design, &cell_placement);
    let congestion = eval::congestion::estimate_congestion(
        design,
        &cell_placement,
        macro_placement,
        &config.congestion,
    );
    let gnet = NetGraph::from_design_reference(design);
    let gseq = SeqGraph::from_netgraph(design, &gnet, &SeqGraphConfig::default());
    let timing = eval::timing::estimate_timing(design, &gseq, &cell_placement, &config.timing);
    let density =
        eval::DensityMap::compute(design, &cell_placement, macro_placement, config.density_bins);
    PlacementMetrics {
        wirelength_m: hpwl.meters(config.dbu_per_micron),
        hpwl,
        congestion,
        timing,
        density,
        cell_placement,
    }
}

/// The pre-refactor HPWL: per-net point buffer, hash lookups per pin.
pub fn total_hpwl_hashmap(design: &Design, positions: &HashMap<CellId, Point>) -> Hpwl {
    let mut total: i128 = 0;
    let mut routed = 0usize;
    for (_, net) in design.nets() {
        let mut points: Vec<Point> = Vec::with_capacity(net.degree());
        if let Some(c) = net.driver_cell {
            if let Some(&p) = positions.get(&c) {
                points.push(p);
            }
        }
        for &c in &net.sink_cells {
            if let Some(&p) = positions.get(&c) {
                points.push(p);
            }
        }
        if let Some(p) = net.driver_port {
            if let Some(pos) = design.port(p).position {
                points.push(pos);
            }
        }
        for &p in &net.sink_ports {
            if let Some(pos) = design.port(p).position {
                points.push(pos);
            }
        }
        if points.len() < 2 {
            continue;
        }
        if let Some(bb) = Rect::bounding_box(points) {
            total += (bb.width() + bb.height()) as i128;
            routed += 1;
        }
    }
    Hpwl { dbu: total, routed_nets: routed }
}

/// Converts a hash-map placement into the dense [`CellPlacement`] (for
/// cross-checking against the dense pipeline).
pub fn to_dense(design: &Design, positions: &HashMap<CellId, Point>) -> CellPlacement {
    let mut placement = CellPlacement::with_num_cells(design.num_cells());
    for (&c, &p) in positions {
        placement.set_position(c, p);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;
    use workload::presets::generate_circuit;

    #[test]
    fn reference_placer_matches_dense_placer() {
        let generated = generate_circuit("c1");
        let design = &generated.design;
        // a deterministic macro grid placement
        let mut mp = HashMap::new();
        for (i, m) in design.macros().enumerate() {
            let cell = design.cell(m);
            let die = design.die();
            let x = die.llx + (i as i64 % 6) * (die.width() / 6);
            let y = die.lly + (i as i64 / 6) * (die.height() / 6);
            mp.insert(
                m,
                (
                    Point::new(x.min(die.urx - cell.width), y.min(die.ury - cell.height)),
                    Orientation::N,
                ),
            );
        }
        let cfg = PlacerConfig::default();
        let reference = place_standard_cells_hashmap(design, &mp, &cfg);
        let dense = eval::place_standard_cells(design, &mp, &cfg);
        for id in design.cell_ids() {
            assert_eq!(dense.position(id), reference.get(&id).copied(), "cell {id:?}");
        }
        let wl_ref = total_hpwl_hashmap(design, &reference);
        let wl_dense = eval::total_hpwl(design, &dense);
        assert_eq!(wl_ref, wl_dense);
    }

    #[test]
    fn reference_pipeline_matches_session_evaluator() {
        let generated = generate_circuit("c1");
        let design = &generated.design;
        let mut mp = HashMap::new();
        for (i, m) in design.macros().enumerate() {
            let cell = design.cell(m);
            let die = design.die();
            let x = die.llx + (i as i64 % 6) * (die.width() / 6);
            let y = die.lly + (i as i64 / 6) * (die.height() / 6);
            mp.insert(
                m,
                (
                    Point::new(x.min(die.urx - cell.width), y.min(die.ury - cell.height)),
                    Orientation::N,
                ),
            );
        }
        let cfg = EvalConfig::standard();
        // the rescan placer is bit-identical to the incremental-sum placer
        let rescan = place_standard_cells_rescan(design, &mp, &cfg.placer);
        let current = eval::place_standard_cells(design, &mp, &cfg.placer);
        assert_eq!(rescan, current);
        // and the preserved one-shot pipeline matches the session evaluator
        let reference = evaluate_placement_reference(design, &mp, &cfg);
        let session = eval::Evaluator::new(cfg).evaluate(design, &mp);
        assert_eq!(reference, session);
    }

    #[test]
    fn to_dense_round_trips() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_comb("a", "");
        b.add_comb("b", "");
        let d = b.build();
        let mut positions = HashMap::new();
        positions.insert(a, Point::new(3, 4));
        let dense = to_dense(&d, &positions);
        assert_eq!(dense.position(a), Some(Point::new(3, 4)));
        assert_eq!(dense.num_placed(), 1);
    }
}
