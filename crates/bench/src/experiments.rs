//! The three-flow comparison used by the table experiments.

use baselines::{HandFp, HandFpConfig, IndEda, IndEdaConfig};
use eval::{EvalConfig, Evaluator, PlacementMetrics};
use hidap::{HidapConfig, HidapFlow, MacroPlacement};
use netlist::design::Design;
use placer_core::{BatchGrid, BatchRunner, PlaceContext, PlaceRequest, WirelengthObjective};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use workload::presets::generate_circuit;

/// The scenarios of the table experiments: the paper's c1–c8 stand-ins plus
/// the `large_soc` scale scenario (~90k cells, 200 macros) that exercises the
/// dense data plane and the reused evaluation session at production size.
///
/// The ~1M-cell `mega_soc` scale scenario is deliberately *not* part of the
/// default set (a three-flow comparison at that size takes hours); request it
/// explicitly with `--circuits mega_soc` — `generate_circuit` resolves it —
/// or use `bench_placer --scale-sweep` for the single-flow scaling curve
/// (see `docs/SCALING.md`).
pub const TABLE_SCENARIOS: [&str; 9] =
    ["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "large_soc"];

/// How much compute each flow is allowed to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Reduced effort: suitable for CI and quick experiments (the default of
    /// every harness binary).
    Fast,
    /// The default effort of each flow's configuration.
    Default,
    /// Paper-style effort: high annealing budgets and the full handFP oracle
    /// (multiple seeds × multiple λ at high effort). Expect minutes per circuit.
    Paper,
}

impl Effort {
    /// Parses the `--effort` command-line value.
    pub fn parse(s: &str) -> Option<Effort> {
        match s {
            "fast" => Some(Effort::Fast),
            "default" => Some(Effort::Default),
            "paper" => Some(Effort::Paper),
            _ => None,
        }
    }

    /// HiDaP configuration for this effort tier.
    pub fn hidap_config(self) -> HidapConfig {
        match self {
            Effort::Fast => HidapConfig::fast(),
            Effort::Default => HidapConfig::default(),
            Effort::Paper => HidapConfig::high_effort(),
        }
    }

    /// IndEDA configuration for this effort tier.
    pub fn indeda_config(self) -> IndEdaConfig {
        match self {
            Effort::Fast => IndEdaConfig::fast(),
            Effort::Default => IndEdaConfig::default(),
            Effort::Paper => IndEdaConfig {
                moves_per_macro: 80,
                temperature_steps: 90,
                ..IndEdaConfig::default()
            },
        }
    }

    /// handFP oracle configuration for this effort tier.
    pub fn handfp_config(self) -> HandFpConfig {
        match self {
            Effort::Fast => HandFpConfig {
                seeds: vec![1, 2],
                lambdas: vec![0.2, 0.5, 0.8],
                base: HidapConfig::fast(),
                ..HandFpConfig::default()
            },
            Effort::Default => HandFpConfig {
                seeds: vec![1, 2, 3],
                lambdas: vec![0.2, 0.5, 0.8],
                base: HidapConfig::default(),
                ..HandFpConfig::default()
            },
            Effort::Paper => HandFpConfig::default(),
        }
    }
}

/// The measured outcome of one flow on one circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// Flow name (`IndEDA`, `HiDaP`, `handFP`).
    pub flow: String,
    /// Wirelength in meters.
    pub wirelength_m: f64,
    /// Wirelength normalized to the handFP flow of the same circuit.
    pub wl_normalized: f64,
    /// Global-routing overflow percentage.
    pub grc_percent: f64,
    /// Worst negative slack as a percentage of the clock period.
    pub wns_percent: f64,
    /// Total negative slack in nanoseconds.
    pub tns_ns: f64,
    /// Flow runtime in seconds (placement only, excluding evaluation).
    pub runtime_s: f64,
    /// Whether the macro placement is legal.
    pub legal: bool,
}

/// The three-flow comparison for one circuit — one group of rows of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitComparison {
    /// Circuit name.
    pub circuit: String,
    /// Number of standard cells + macros in the synthetic stand-in.
    pub cells: usize,
    /// Number of macros.
    pub macros: usize,
    /// Results for IndEDA, HiDaP and handFP (in that order).
    pub results: Vec<FlowResult>,
    /// The λ value that won the best-of-three selection for HiDaP.
    pub hidap_best_lambda: f64,
}

impl CircuitComparison {
    /// The result of a given flow.
    pub fn flow(&self, name: &str) -> Option<&FlowResult> {
        self.results.iter().find(|r| r.flow == name)
    }
}

fn flow_result(
    name: &str,
    design: &Design,
    placement: &MacroPlacement,
    runtime_s: f64,
    evaluator: &mut Evaluator,
) -> (FlowResult, PlacementMetrics) {
    let metrics = evaluator.evaluate(design, placement);
    (
        FlowResult {
            flow: name.to_string(),
            wirelength_m: metrics.wirelength_m,
            wl_normalized: 0.0, // filled once handFP is known
            grc_percent: metrics.grc_percent(),
            wns_percent: metrics.wns_percent(),
            tns_ns: metrics.tns_ns(),
            runtime_s,
            legal: placement.is_legal(design),
        },
        metrics,
    )
}

/// Runs HiDaP once per λ in {0.2, 0.5, 0.8} and keeps the placement with the
/// best measured wirelength, as the paper does ("best WL of three").
///
/// The three λ runs fan out across all cores through the engine's
/// [`BatchRunner`]; the winner is deterministic regardless of thread count.
pub fn hidap_best_of_lambdas(
    design: &Design,
    base: &HidapConfig,
    eval_cfg: &EvalConfig,
) -> Result<(MacroPlacement, f64, f64), hidap::HidapError> {
    let placer = HidapFlow::new(base.clone());
    let grid = BatchGrid::new(vec![base.seed], vec![0.2, 0.5, 0.8]);
    let runner =
        BatchRunner::new().with_objective(Box::new(WirelengthObjective { eval: *eval_cfg }));
    let batch = runner
        .run(&placer, &PlaceRequest::new(design), &grid, &mut PlaceContext::new())
        .map_err(|e| match e {
            placer_core::PlaceError::Flow(inner) => inner,
            other => hidap::HidapError::Internal(other.to_string()),
        })?;
    let lambda = batch.winner.lambda.expect("hidap reports lambda");
    Ok((batch.winner.placement, batch.winner_score, lambda))
}

/// Runs the three flows on one of the c1–c8 stand-ins and measures them with
/// the shared evaluation pipeline.
pub fn compare_flows(circuit: &str, effort: Effort) -> CircuitComparison {
    let generated = generate_circuit(circuit);
    compare_flows_on(circuit, &generated.design, effort)
}

/// Runs the three flows on an arbitrary design.
pub fn compare_flows_on(name: &str, design: &Design, effort: Effort) -> CircuitComparison {
    let eval_cfg = EvalConfig::standard();
    // one evaluation session for all three flows: Gseq is built once
    let mut evaluator = Evaluator::new(eval_cfg);

    // IndEDA-style baseline.
    let t = Instant::now();
    let indeda_placement =
        IndEda::new(effort.indeda_config()).run(design).expect("IndEDA baseline failed");
    let indeda_time = t.elapsed().as_secs_f64();
    let (mut indeda, _) =
        flow_result("IndEDA", design, &indeda_placement, indeda_time, &mut evaluator);

    // HiDaP, best of three λ.
    let t = Instant::now();
    let (hidap_placement, _, best_lambda) =
        hidap_best_of_lambdas(design, &effort.hidap_config(), &eval_cfg)
            .expect("HiDaP flow failed");
    let hidap_time = t.elapsed().as_secs_f64();
    let (mut hidap, _) = flow_result("HiDaP", design, &hidap_placement, hidap_time, &mut evaluator);

    // handFP oracle.
    let t = Instant::now();
    let (handfp_placement, _) =
        HandFp::new(effort.handfp_config()).run(design).expect("handFP oracle failed");
    let handfp_time = t.elapsed().as_secs_f64();
    let (mut handfp, _) =
        flow_result("handFP", design, &handfp_placement, handfp_time, &mut evaluator);

    // Normalize wirelengths to handFP as in the paper.
    let reference = handfp.wirelength_m.max(1e-12);
    indeda.wl_normalized = indeda.wirelength_m / reference;
    hidap.wl_normalized = hidap.wirelength_m / reference;
    handfp.wl_normalized = 1.0;

    CircuitComparison {
        circuit: name.to_string(),
        cells: design.num_cells(),
        macros: design.num_macros(),
        results: vec![indeda, hidap, handfp],
        hidap_best_lambda: best_lambda,
    }
}

/// Geometric mean of a series (used for Table II wirelength averages).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum_ln: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (sum_ln / values.len() as f64).exp()
}

/// Parses `--circuits` / `--effort` style command-line arguments shared by the
/// harness binaries. Returns `(circuits, effort)`.
pub fn parse_common_args(args: &[String], default_circuits: &[&str]) -> (Vec<String>, Effort) {
    let mut circuits: Vec<String> = default_circuits.iter().map(|s| s.to_string()).collect();
    let mut effort = Effort::Fast;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--circuits" if i + 1 < args.len() => {
                circuits = args[i + 1].split(',').map(|s| s.trim().to_string()).collect();
                i += 2;
            }
            "--effort" if i + 1 < args.len() => {
                effort = Effort::parse(&args[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown effort '{}', using fast", args[i + 1]);
                    Effort::Fast
                });
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }
    (circuits, effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    fn tiny_design() -> Design {
        let mut b = DesignBuilder::new("tiny");
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..8 {
            let f = b.add_flop(format!("u_x/r_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("a{i}"));
            let n1 = b.add_net(format!("b{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn compare_flows_on_tiny_design_produces_three_rows() {
        let d = tiny_design();
        let cmp = compare_flows_on("tiny", &d, Effort::Fast);
        assert_eq!(cmp.results.len(), 3);
        assert_eq!(cmp.macros, 2);
        assert!(cmp.results.iter().all(|r| r.legal));
        assert!(cmp.results.iter().all(|r| r.wirelength_m > 0.0));
        let handfp = cmp.flow("handFP").unwrap();
        assert!((handfp.wl_normalized - 1.0).abs() < 1e-9);
        assert!([0.2, 0.5, 0.8].contains(&cmp.hidap_best_lambda));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_scenarios_promote_the_scale_scenario() {
        assert!(TABLE_SCENARIOS.contains(&"large_soc"));
        for preset in &workload::presets::PAPER_CIRCUITS {
            assert!(TABLE_SCENARIOS.contains(&preset.name));
        }
    }

    #[test]
    fn effort_parsing() {
        assert_eq!(Effort::parse("fast"), Some(Effort::Fast));
        assert_eq!(Effort::parse("paper"), Some(Effort::Paper));
        assert_eq!(Effort::parse("bogus"), None);
    }

    #[test]
    fn common_arg_parsing() {
        let args: Vec<String> =
            ["--circuits", "c1,c3", "--effort", "default"].iter().map(|s| s.to_string()).collect();
        let (circuits, effort) = parse_common_args(&args, &["c1"]);
        assert_eq!(circuits, vec!["c1", "c3"]);
        assert_eq!(effort, Effort::Default);
        let (circuits, effort) = parse_common_args(&[], &["c1", "c2"]);
        assert_eq!(circuits, vec!["c1", "c2"]);
        assert_eq!(effort, Effort::Fast);
    }
}
