//! Experiment harness for the HiDaP reproduction.
//!
//! This crate glues the workload generator, the three placement flows and the
//! evaluation pipeline together, and hosts the binaries that regenerate every
//! table and figure of the paper (see `DESIGN.md` for the experiment index):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table2` | Table II — average WL / WNS / effort of the three flows |
//! | `table3` | Table III — per-circuit WL, congestion and timing |
//! | `fig1` | Fig. 1 — evolution of the multi-level block floorplan |
//! | `fig3` | Fig. 3 — block-flow vs macro-flow vs combined layouts |
//! | `fig9` | Fig. 9 — density maps of c3 under the three flows |
//! | `lambda_sweep` | the λ ∈ {0.2, 0.5, 0.8} exploration of Sect. V |
//! | `ablation_decluster` | sensitivity to `min_area` / `open_area` (Sect. IV-B) |
//! | `ablation_score_k` | sensitivity to the latency exponent k (Sect. IV-D) |
//! | `bench_placer` | hashmap-vs-dense placer + HPWL microbench → `BENCH_placer.json` |
//!
//! Every binary accepts `--effort fast|default|paper` (default `fast`) and,
//! where applicable, `--circuits c1,c2,...`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod reference;
pub mod report;

pub use experiments::{compare_flows, CircuitComparison, Effort, FlowResult};
