//! Criterion micro-benchmarks for the core building blocks of the flow:
//! shape-curve composition, sequential-graph construction, one level of
//! layout generation, the full flow on small presets, and the evaluation
//! pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geometry::{CutDirection, PolishExpression, Rect, ShapeCurve};
use graphs::seqgraph::SeqGraphConfig;
use graphs::SeqGraph;
use hidap::layout::{generate_layout, LayoutBlock, LayoutProblem};
use hidap::shape_curves::compose_expression;
use hidap::{HidapConfig, HidapFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::presets::{fig1_design, generate_circuit};

fn bench_shape_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape_curve_composition");
    for &n in &[8usize, 32, 64] {
        let leaves: Vec<ShapeCurve> = (0..n)
            .map(|i| {
                ShapeCurve::from_macro(40 + (i as i64 % 7) * 10, 30 + (i as i64 % 5) * 10, true)
            })
            .collect();
        let expr = PolishExpression::chain(n, CutDirection::Vertical);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compose_expression(&expr, &leaves, 24))
        });
    }
    group.finish();
}

fn bench_seq_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("gseq_construction");
    group.sample_size(20);
    for name in ["c1", "c5"] {
        let generated = generate_circuit(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &generated, |b, g| {
            b.iter(|| SeqGraph::from_design(&g.design, &SeqGraphConfig { min_register_bits: 4 }))
        });
    }
    group.finish();
}

fn bench_layout_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_generation");
    group.sample_size(10);
    for &n in &[4usize, 12] {
        let blocks: Vec<LayoutBlock> = (0..n)
            .map(|i| LayoutBlock {
                shape: ShapeCurve::from_macro(100 + 10 * i as i64, 80, true),
                min_area: 20_000,
                target_area: 30_000,
            })
            .collect();
        let mut affinity = graphs::AffinityMatrix::zeros(n);
        for i in 0..n {
            affinity.set(i, (i + 1) % n, 10.0);
            affinity.set((i + 1) % n, i, 10.0);
        }
        let problem = LayoutProblem {
            region: Rect::new(0, 0, 1200, 900),
            blocks,
            affinity,
            fixed_positions: vec![None; n],
        };
        let config = HidapConfig::fast();
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                generate_layout(p, &config, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    let fig1 = fig1_design();
    group.bench_function("fig1_16_macros", |b| {
        b.iter(|| HidapFlow::new(HidapConfig::fast()).run(&fig1.design).expect("flow"))
    });
    let c1 = generate_circuit("c1");
    group.bench_function("c1_32_macros", |b| {
        b.iter(|| HidapFlow::new(HidapConfig::fast()).run(&c1.design).expect("flow"))
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation_pipeline");
    group.sample_size(10);
    let c1 = generate_circuit("c1");
    let placement = HidapFlow::new(HidapConfig::fast()).run(&c1.design).expect("flow");
    // one-shot: a fresh Evaluator per candidate rebuilds Gseq every time
    // (the shape of the deleted pre-session `evaluate_placement` path)
    group.bench_function("evaluate_c1_oneshot", |b| {
        b.iter(|| {
            eval::Evaluator::new(eval::EvalConfig::standard()).evaluate(&c1.design, &placement)
        })
    });
    // session: the sweep shape — one Evaluator, Gseq cached across calls
    let mut session = eval::Evaluator::new(eval::EvalConfig::standard());
    group.bench_function("evaluate_c1_session", |b| {
        b.iter(|| session.evaluate(&c1.design, &placement))
    });
    group.finish();
}

/// Hashmap-vs-dense comparison of the two hot paths the data-plane refactor
/// targets: the Gauss–Seidel placer sweep and HPWL (see `bench_placer` for
/// the large_soc-scale run that emits `BENCH_placer.json`).
fn bench_hashmap_vs_dense(c: &mut Criterion) {
    use bench::reference::{place_standard_cells_hashmap, total_hpwl_hashmap};

    let mut group = c.benchmark_group("hashmap_vs_dense");
    group.sample_size(10);
    let c1 = generate_circuit("c1");
    let placement = HidapFlow::new(HidapConfig::fast()).run(&c1.design).expect("flow");
    let map = placement.to_map();
    let cfg = eval::PlacerConfig::default();
    group.bench_function("placer_c1_hashmap", |b| {
        b.iter(|| place_standard_cells_hashmap(&c1.design, &map, &cfg))
    });
    group.bench_function("placer_c1_dense", |b| {
        b.iter(|| eval::place_standard_cells(&c1.design, &map, &cfg))
    });
    let reference = place_standard_cells_hashmap(&c1.design, &map, &cfg);
    let dense = eval::place_standard_cells(&c1.design, &map, &cfg);
    group.bench_function("hpwl_c1_hashmap", |b| {
        b.iter(|| total_hpwl_hashmap(&c1.design, &reference))
    });
    group.bench_function("hpwl_c1_dense", |b| b.iter(|| eval::total_hpwl(&c1.design, &dense)));
    group.finish();
}

criterion_group!(
    benches,
    bench_shape_curves,
    bench_seq_graph,
    bench_layout_generation,
    bench_full_flow,
    bench_evaluation,
    bench_hashmap_vs_dense
);
criterion_main!(benches);
