//! Adversarial workload presets and the random ECO edit generator.
//!
//! The `presets` module models *representative* designs; this module models
//! the nasty corners a placement service meets in production ECO traffic:
//!
//! * [`adv_fanout`] — a few broadcast nets with hundreds of sinks each
//!   (clock-enable / reset shape), stressing net-model degree handling,
//! * `adv_aspect` ([`adv_aspect_config`]) — a pathologically wide die (8:1 aspect ratio),
//!   stressing shelf legalization and shape curves,
//! * `adv_macro_heavy` ([`adv_macro_heavy_config`]) — macro area dominating the die, leaving little
//!   slack for legalization to resolve overlaps,
//! * `adv_packed` ([`adv_packed_config`]) — near-full utilization, the near-degenerate end of the
//!   die-sizing axis.
//!
//! Every preset is deterministic; the tests below pin exact id-family counts
//! and all three identity fingerprints (the `mega_soc` regression pattern),
//! so a silent generator change cannot repoint cached artifacts.
//!
//! [`random_edits`] / [`random_geometry_edits`] generate seeded random edit
//! scripts against a design — the input side of the differential ECO fuzzer
//! (`bench/tests/eco_fuzz.rs`), which asserts that incrementally edited
//! designs place identically to from-scratch rebuilds.

use crate::generator::{SocConfig, SocGenerator, SubsystemConfig};
use geometry::{Dbu, Point, Rect};
use netlist::design::{CellId, Design, DesignBuilder, NetId, PortDirection, PortId};
use netlist::edit::DesignEdit;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Names of the adversarial presets accepted by [`adversarial_design`].
pub const ADVERSARIAL_PRESETS: [&str; 4] =
    ["adv_fanout", "adv_aspect", "adv_macro_heavy", "adv_packed"];

/// Generates one adversarial preset by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`ADVERSARIAL_PRESETS`].
pub fn adversarial_design(name: &str) -> Design {
    match name {
        "adv_fanout" => adv_fanout(),
        "adv_aspect" => SocGenerator::new(adv_aspect_config()).generate().design,
        "adv_macro_heavy" => SocGenerator::new(adv_macro_heavy_config()).generate().design,
        "adv_packed" => SocGenerator::new(adv_packed_config()).generate().design,
        other => panic!("unknown adversarial preset '{other}'"),
    }
}

/// The high-fanout preset: one control macro broadcasting eight enable-like
/// nets to every state flop of six memory blocks (384 sinks per net), plus
/// ordinary per-flop data nets so the design still has local structure.
pub fn adv_fanout() -> Design {
    let mut b = DesignBuilder::new("adv_fanout");
    let blocks = 6usize;
    let flops_per_block = 64usize;
    let ctl = b.add_macro("u_ctl/rom", "CTL_ROM", 50_000, 40_000, "u_ctl");
    let broadcast: Vec<NetId> = (0..8)
        .map(|i| {
            let n = b.add_net(format!("u_ctl/bcast[{i}]"));
            b.connect_driver(n, ctl);
            n
        })
        .collect();
    for blk in 0..blocks {
        let hier = format!("u_b{blk}");
        let mac = b.add_macro(format!("{hier}/ram"), "RAM", 40_000, 30_000, hier.clone());
        for f in 0..flops_per_block {
            let flop = b.add_flop(format!("{hier}/state_reg[{f}]"), hier.clone());
            for &n in &broadcast {
                b.connect_sink(n, flop);
            }
            let d = b.add_net(format!("{hier}/q[{f}]"));
            b.connect_driver(d, flop);
            b.connect_sink(d, mac);
        }
    }
    for bit in 0..8 {
        let p = b.add_port(format!("cfg[{bit}]"), PortDirection::Input);
        let n = b.add_net(format!("cfg_net[{bit}]"));
        b.connect_port_driver(n, p);
        b.connect_sink(n, ctl);
    }
    let mut design = b.build();
    let side = ((design.total_cell_area() as f64 / 0.5).sqrt()).ceil() as Dbu;
    let die = Rect::new(0, 0, side.max(1), side.max(1));
    design.set_die(die);
    for (i, pid) in design.port_ids().enumerate().collect::<Vec<_>>() {
        let frac = (i + 1) as f64 / 9.0;
        design.port_mut(pid).position = Some(Point::new(0, (die.height() as f64 * frac) as Dbu));
    }
    design
}

/// The pathological-aspect-ratio preset: an 8:1 die, so the shelf packer
/// works with a die barely taller than a rotated macro.
pub fn adv_aspect_config() -> SocConfig {
    SocConfig {
        name: "adv_aspect".into(),
        subsystems: (0..4)
            .map(|s| SubsystemConfig {
                name: format!("u_strip{s}"),
                macros: 2,
                macro_size: (40_000, 30_000),
                pipeline_stages: 3,
                datapath_bits: 16,
                glue_per_stage: 64,
            })
            .collect(),
        channels: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        io_subsystems: vec![0],
        io_bits: 16,
        utilization: 0.4,
        aspect_ratio: 8.0,
        seed: 0xA5BEC7,
    }
}

/// The macro-dominated preset: 48 large macros covering roughly two thirds
/// of the die, with only a sliver of glue logic between them.
pub fn adv_macro_heavy_config() -> SocConfig {
    SocConfig {
        name: "adv_macro_heavy".into(),
        subsystems: (0..4)
            .map(|s| SubsystemConfig {
                name: format!("u_bank{s}"),
                macros: 12,
                macro_size: (80_000, 60_000),
                pipeline_stages: 2,
                datapath_bits: 4,
                glue_per_stage: 8,
            })
            .collect(),
        channels: vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.7,
        aspect_ratio: 1.0,
        seed: 0x3AC20,
    }
}

/// The near-full-utilization preset: 92 % of the die is cell area, leaving
/// legalization almost no slack to resolve overlaps.
pub fn adv_packed_config() -> SocConfig {
    SocConfig {
        name: "adv_packed".into(),
        subsystems: (0..6)
            .map(|s| SubsystemConfig {
                name: format!("u_p{s}"),
                macros: 2,
                macro_size: (50_000, 40_000),
                pipeline_stages: 4,
                datapath_bits: 24,
                glue_per_stage: 96,
            })
            .collect(),
        channels: (0..6).map(|s| (s, (s + 1) % 6)).collect(),
        io_subsystems: vec![0, 3],
        io_bits: 24,
        utilization: 0.92,
        aspect_ratio: 1.0,
        seed: 0x9AC4ED,
    }
}

/// Generates a seeded random ECO edit script against `design`: footprint
/// resizes, placement-seed macro moves, master swaps, port moves, net
/// rewires and grow-only die changes.  Every edit applies cleanly to the
/// design it was generated for (ids are sampled from it, dimensions stay
/// positive, die changes only grow), so fuzzers can apply the script without
/// filtering.  Deterministic in `(design, seed, count)`.
pub fn random_edits(design: &Design, seed: u64, count: usize) -> Vec<DesignEdit> {
    random_edit_script(design, seed, count, true)
}

/// Like [`random_edits`], but restricted to pure-geometry (and
/// placement-seed) kinds: no net rewires, so the batch's
/// [`netlist::edit::FingerprintDiff`] is pure geometry and cached
/// `Gnet`/`Gseq` artifacts must stay warm.
pub fn random_geometry_edits(design: &Design, seed: u64, count: usize) -> Vec<DesignEdit> {
    random_edit_script(design, seed, count, false)
}

fn random_edit_script(design: &Design, seed: u64, count: usize, rewires: bool) -> Vec<DesignEdit> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let macros: Vec<CellId> = design.macros().collect();
    let cells: Vec<CellId> = design.cell_ids().collect();
    let nets: Vec<NetId> = design.net_ids().collect();
    let ports: Vec<PortId> = design.port_ids().collect();
    let die = design.die();
    let pick = |rng: &mut ChaCha8Rng, n: usize| rng.gen_range(0..n);
    // dimensions stay within [60 %, 110 %] of the original footprint so a
    // long script cannot blow the macro area past the die
    let jitter = |rng: &mut ChaCha8Rng, dim: Dbu| -> Dbu {
        let lo = (dim as f64 * 0.6) as Dbu;
        let hi = (dim as f64 * 1.1) as Dbu;
        rng.gen_range(lo..=hi.max(lo + 1)).max(1)
    };
    let mut edits = Vec::with_capacity(count);
    let mut die_grown = die;
    for _ in 0..count {
        let kind = rng.gen_range(0..if rewires { 7usize } else { 5usize });
        edits.push(match kind {
            0 | 1 => {
                let cell = macros[pick(&mut rng, macros.len())];
                let c = design.cell(cell);
                DesignEdit::ResizeCell {
                    cell,
                    width: jitter(&mut rng, c.width),
                    height: jitter(&mut rng, c.height),
                }
            }
            2 => {
                let cell = macros[pick(&mut rng, macros.len())];
                DesignEdit::MoveMacro {
                    cell,
                    to: Point::new(
                        rng.gen_range(die.llx..die.urx.max(die.llx + 1)),
                        rng.gen_range(die.lly..die.ury.max(die.lly + 1)),
                    ),
                }
            }
            3 => {
                let cell = macros[pick(&mut rng, macros.len())];
                let c = design.cell(cell);
                let (width, height) = (jitter(&mut rng, c.width), jitter(&mut rng, c.height));
                DesignEdit::SwapMaster {
                    cell,
                    lib_cell: format!("ECO_ALT_{width}x{height}"),
                    width,
                    height,
                }
            }
            4 if !ports.is_empty() => {
                let port = ports[pick(&mut rng, ports.len())];
                let to = if rng.gen_bool(0.8) {
                    Some(Point::new(die.llx, rng.gen_range(die.lly..die.ury.max(die.lly + 1))))
                } else {
                    None
                };
                DesignEdit::MovePort { port, to }
            }
            4 => {
                // port-free designs fall back to a die grow
                die_grown = grow(die_grown, &mut rng);
                DesignEdit::SetDie { die: die_grown }
            }
            5 => {
                let net = nets[pick(&mut rng, nets.len())];
                let driver =
                    if rng.gen_bool(0.8) { Some(cells[pick(&mut rng, cells.len())]) } else { None };
                let sinks = (0..rng.gen_range(1..=4usize))
                    .map(|_| cells[pick(&mut rng, cells.len())])
                    .collect();
                DesignEdit::RewireNet { net, driver, sinks }
            }
            _ => {
                die_grown = grow(die_grown, &mut rng);
                DesignEdit::SetDie { die: die_grown }
            }
        });
    }
    edits
}

/// Grows a die outline by 2–8 % in each dimension (grow-only, so macros that
/// fit before still fit).
fn grow(die: Rect, rng: &mut ChaCha8Rng) -> Rect {
    let gw = (die.width() as f64 * rng.gen_range(0.02..0.08)) as Dbu;
    let gh = (die.height() as f64 * rng.gen_range(0.02..0.08)) as Dbu;
    Rect::new(die.llx, die.lly, die.urx + gw.max(1), die.ury + gh.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_preset_has_broadcast_nets_and_pinned_identity() {
        let d = adv_fanout();
        d.validate().expect("consistent design");
        let max_degree = d.net_ids().map(|n| d.net(n).degree()).max().expect("design has nets");
        assert!(max_degree >= 385, "broadcast nets fan out to every flop, got {max_degree}");
        // pinned id-family counts + identity fingerprints (mega_soc pattern)
        assert_eq!(d.num_cells(), 391);
        assert_eq!(d.num_nets(), 400);
        assert_eq!(d.num_ports(), 8);
        assert_eq!(d.num_macros(), 7);
        assert_eq!(d.geometry_fingerprint(), 0x5ef5_79b1_0f9d_523f);
        assert_eq!(d.seq_name_fingerprint(), 0xbfe4_137b_6059_54d0);
        assert_eq!(d.connectivity().fingerprint(), 0x2c38_04ad_ef0a_02ac);
    }

    #[test]
    fn aspect_preset_is_pathologically_wide_with_pinned_identity() {
        let g = SocGenerator::new(adv_aspect_config()).generate();
        let d = &g.design;
        d.validate().expect("consistent design");
        let die = d.die();
        let ratio = die.width() as f64 / die.height() as f64;
        assert!((7.5..8.5).contains(&ratio), "8:1 die, got {ratio}");
        // the die is barely taller than a rotated macro
        assert!(die.height() < 2 * 40_000, "height {} leaves no stacking slack", die.height());
        assert_eq!(d.num_macros(), 8);
        assert_eq!(d.geometry_fingerprint(), 0x248d_72ef_d087_4e9f);
        assert_eq!(d.seq_name_fingerprint(), 0x1d12_6faf_2112_a57f);
        assert_eq!(d.connectivity().fingerprint(), 0x94b2_d763_8b99_ac1a);
    }

    #[test]
    fn macro_heavy_preset_is_macro_dominated_with_pinned_identity() {
        let g = SocGenerator::new(adv_macro_heavy_config()).generate();
        let d = &g.design;
        d.validate().expect("consistent design");
        let macro_area: i128 = d.macros().map(|m| d.cell(m).area()).sum();
        let frac = macro_area as f64 / d.die().area() as f64;
        assert!(frac > 0.6, "macros dominate the die, got {frac:.2}");
        assert!(frac < 1.0, "but still fit, got {frac:.2}");
        assert_eq!(d.num_macros(), 48);
        assert_eq!(d.geometry_fingerprint(), 0x9ff5_430c_928b_5641);
        assert_eq!(d.seq_name_fingerprint(), 0x42cd_6e2a_322b_4691);
        assert_eq!(d.connectivity().fingerprint(), 0xf9a6_606e_91f4_49f0);
    }

    #[test]
    fn packed_preset_is_near_full_with_pinned_identity() {
        let g = SocGenerator::new(adv_packed_config()).generate();
        let d = &g.design;
        d.validate().expect("consistent design");
        let util = d.total_cell_area() as f64 / d.die().area() as f64;
        assert!(util > 0.85, "near-full utilization, got {util:.2}");
        assert_eq!(d.num_macros(), 12);
        assert_eq!(d.geometry_fingerprint(), 0xa1ac_446f_8f22_2409);
        assert_eq!(d.seq_name_fingerprint(), 0x1aab_da8a_089d_d62d);
        assert_eq!(d.connectivity().fingerprint(), 0xc353_db50_a705_4535);
    }

    #[test]
    fn every_preset_resolves_by_name() {
        for name in ADVERSARIAL_PRESETS {
            let d = adversarial_design(name);
            assert_eq!(d.name(), name);
            d.validate().expect("consistent design");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_adversarial_preset_panics() {
        adversarial_design("adv_nope");
    }

    #[test]
    fn random_edits_are_deterministic_and_apply_cleanly() {
        for name in ADVERSARIAL_PRESETS {
            let base = adversarial_design(name);
            let edits = random_edits(&base, 42, 16);
            assert_eq!(edits.len(), 16);
            assert_eq!(edits, random_edits(&base, 42, 16), "deterministic in the seed");
            assert_ne!(edits, random_edits(&base, 43, 16), "seed actually matters");
            let mut edited = base.clone();
            let log = edited.apply_edits(&edits).expect("generated edits apply cleanly");
            assert_eq!(log.applied, 16);
            edited.validate().expect("edited design stays consistent");
        }
    }

    #[test]
    fn geometry_edits_keep_the_artifact_identity() {
        let base = adversarial_design("adv_fanout");
        let edits = random_geometry_edits(&base, 7, 24);
        assert!(
            edits.iter().all(|e| !matches!(e, DesignEdit::RewireNet { .. })),
            "geometry scripts never rewire"
        );
        let mut edited = base.clone();
        let log = edited.apply_edits(&edits).expect("clean apply");
        assert!(log.diff.is_pure_geometry(), "Gnet/Gseq stay warm under geometry scripts");
    }
}
