//! The parameterized synthetic SoC generator.
//!
//! A generated design is a tree of *subsystems* below the top level.  Each
//! subsystem contains:
//!
//! * a memory group with `macros` hard macros (SRAM-like footprints),
//! * a pipelined datapath: `pipeline_stages` register arrays of
//!   `datapath_bits` bits each, connected stage to stage through small clouds
//!   of combinational glue,
//! * local glue logic reading and driving the datapath.
//!
//! Subsystems communicate through an interconnect module (`u_noc`): for every
//! configured channel a register array in `u_noc` forwards `datapath_bits`
//! bits from one subsystem's last pipeline stage to another subsystem's first
//! stage — this is the block-flow / macro-flow structure of Fig. 2.  Primary
//! port buses are attached to designated subsystems and placed on the die
//! boundary.

use geometry::{Dbu, Point, Rect};
use netlist::design::{CellId, Design, DesignBuilder, NetId, PortDirection};
use netlist::library::{Library, MacroDef, PinDef};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemConfig {
    /// Instance name (e.g. `u_cpu0`).
    pub name: String,
    /// Number of hard macros in the subsystem's memory group.
    pub macros: usize,
    /// Width and height of each macro in DBU.
    pub macro_size: (Dbu, Dbu),
    /// Number of pipeline register stages.
    pub pipeline_stages: usize,
    /// Bit width of the datapath registers.
    pub datapath_bits: usize,
    /// Number of combinational glue cells per pipeline stage.
    pub glue_per_stage: usize,
}

impl SubsystemConfig {
    /// A balanced subsystem used by the presets.
    pub fn balanced(name: impl Into<String>, macros: usize, datapath_bits: usize) -> Self {
        Self {
            name: name.into(),
            macros,
            macro_size: (60_000, 40_000),
            pipeline_stages: 3,
            datapath_bits,
            glue_per_stage: 4 * datapath_bits,
        }
    }
}

/// Configuration of a whole synthetic SoC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Design name.
    pub name: String,
    /// The subsystems of the design.
    pub subsystems: Vec<SubsystemConfig>,
    /// Communication channels between subsystems, as `(from, to)` indices.
    pub channels: Vec<(usize, usize)>,
    /// Subsystems that receive a primary input bus / drive a primary output bus.
    pub io_subsystems: Vec<usize>,
    /// Width of each primary port bus.
    pub io_bits: usize,
    /// Die utilization (total cell area / die area).
    pub utilization: f64,
    /// Die aspect ratio (width / height).
    pub aspect_ratio: f64,
    /// Random seed (macro size jitter, glue connectivity).
    pub seed: u64,
}

impl SocConfig {
    /// Total number of macros across all subsystems.
    pub fn total_macros(&self) -> usize {
        self.subsystems.iter().map(|s| s.macros).sum()
    }
}

/// The output of the generator.
#[derive(Debug, Clone)]
pub struct GeneratedDesign {
    /// The generated circuit (die area already set).
    pub design: Design,
    /// The macro library referenced by the circuit.
    pub library: Library,
    /// The configuration it was generated from.
    pub config: SocConfig,
}

/// The synthetic SoC generator.
#[derive(Debug, Clone)]
pub struct SocGenerator {
    config: SocConfig,
}

impl SocGenerator {
    /// Creates a generator for a configuration.
    pub fn new(config: SocConfig) -> Self {
        Self { config }
    }

    /// Generates the design. The same configuration always produces the same
    /// circuit.
    pub fn generate(&self) -> GeneratedDesign {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut b = DesignBuilder::new(cfg.name.clone());
        let mut library = Library::new();

        // Per-subsystem bookkeeping of the pipeline boundaries: the input-mux
        // cells feeding the first stage, and the nets driven by the last stage.
        let mut first_stage_muxes: Vec<Vec<CellId>> = Vec::new();
        let mut last_stage_outputs: Vec<Vec<NetId>> = Vec::new();

        for (s_idx, sub) in cfg.subsystems.iter().enumerate() {
            let (muxes, outs) = self.build_subsystem(&mut b, &mut library, &mut rng, s_idx, sub);
            first_stage_muxes.push(muxes);
            last_stage_outputs.push(outs);
        }

        // Interconnect: one register array per channel inside u_noc.
        for (c_idx, &(from, to)) in cfg.channels.iter().enumerate() {
            let bits =
                cfg.subsystems[from].datapath_bits.min(cfg.subsystems[to].datapath_bits).max(1);
            for bit in 0..bits {
                let f = b.add_flop(format!("u_noc/ch{c_idx}_reg[{bit}]"), "u_noc");
                let src_net = last_stage_outputs[from][bit % last_stage_outputs[from].len()];
                b.connect_sink(src_net, f);
                let out_net = b.add_net(format!("u_noc/ch{c_idx}_q[{bit}]"));
                b.connect_driver(out_net, f);
                // drive a glue cell in the target subsystem that feeds its first-stage mux
                let glue = b.add_comb(
                    format!("{}/rx_ch{c_idx}_{bit}", cfg.subsystems[to].name),
                    cfg.subsystems[to].name.clone(),
                );
                b.connect_sink(out_net, glue);
                let rx_net =
                    b.add_net(format!("{}/rx_ch{c_idx}_q[{bit}]", cfg.subsystems[to].name));
                b.connect_driver(rx_net, glue);
                let mux = first_stage_muxes[to][bit % first_stage_muxes[to].len()];
                b.connect_sink(rx_net, mux);
            }
        }

        // Primary I/O buses.
        for (io_idx, &s_idx) in cfg.io_subsystems.iter().enumerate() {
            let sub = &cfg.subsystems[s_idx];
            for bit in 0..cfg.io_bits {
                let in_port = b.add_port(format!("din{io_idx}[{bit}]"), PortDirection::Input);
                let n = b.add_net(format!("din{io_idx}_net[{bit}]"));
                b.connect_port_driver(n, in_port);
                let glue =
                    b.add_comb(format!("{}/io_in_{io_idx}_{bit}", sub.name), sub.name.clone());
                b.connect_sink(n, glue);
                let io_net = b.add_net(format!("{}/io_in_{io_idx}_q[{bit}]", sub.name));
                b.connect_driver(io_net, glue);
                let mux = first_stage_muxes[s_idx][bit % first_stage_muxes[s_idx].len()];
                b.connect_sink(io_net, mux);

                let out_port = b.add_port(format!("dout{io_idx}[{bit}]"), PortDirection::Output);
                let out_net = last_stage_outputs[s_idx][bit % last_stage_outputs[s_idx].len()];
                b.connect_port_sink(out_net, out_port);
            }
        }

        // Die area from utilization, ports on the boundary.
        let mut design = b.build();
        let total_area = design.total_cell_area();
        let die_area = (total_area as f64 / cfg.utilization.clamp(0.05, 0.95)).max(1.0);
        let height = (die_area / cfg.aspect_ratio).sqrt();
        let width = height * cfg.aspect_ratio;
        let die = Rect::new(0, 0, width.round() as Dbu, height.round() as Dbu);
        design.set_die(die);
        place_ports_on_boundary(&mut design, die);
        design.bind_library(&library);

        GeneratedDesign { design, library, config: cfg.clone() }
    }

    /// Builds one subsystem; returns the input-mux cells feeding its first
    /// pipeline stage and the nets driven by its last stage.
    fn build_subsystem(
        &self,
        b: &mut DesignBuilder,
        library: &mut Library,
        rng: &mut ChaCha8Rng,
        s_idx: usize,
        sub: &SubsystemConfig,
    ) -> (Vec<CellId>, Vec<NetId>) {
        let path = sub.name.clone();
        let mem_path = format!("{path}/u_mem");
        let dp_path = format!("{path}/u_dp");

        // --- memory group ---------------------------------------------------
        let lib_name = format!("SRAM_{}x{}", sub.macro_size.0, sub.macro_size.1);
        if library.find_macro(&lib_name).is_none() {
            library.add_macro(MacroDef {
                name: lib_name.clone(),
                width: sub.macro_size.0,
                height: sub.macro_size.1,
                is_block: true,
                pins: vec![
                    PinDef { name: "D".into(), offset: Point::new(0, sub.macro_size.1 / 2) },
                    PinDef { name: "Q".into(), offset: Point::new(0, sub.macro_size.1 / 4) },
                ],
            });
        }
        let mut macros: Vec<CellId> = Vec::with_capacity(sub.macros);
        for m in 0..sub.macros {
            macros.push(b.add_macro(
                format!("{mem_path}/bank{m}"),
                lib_name.clone(),
                sub.macro_size.0,
                sub.macro_size.1,
                mem_path.clone(),
            ));
        }

        // --- pipelined datapath ----------------------------------------------
        // stage s register: u_dp/stage{s}_reg[bit]
        let bits = sub.datapath_bits.max(1);
        let mut stage_regs: Vec<Vec<CellId>> = Vec::new();
        for s in 0..sub.pipeline_stages.max(1) {
            let mut regs = Vec::with_capacity(bits);
            for bit in 0..bits {
                regs.push(b.add_flop(format!("{dp_path}/stage{s}_reg[{bit}]"), dp_path.clone()));
            }
            stage_regs.push(regs);
        }
        // first-stage input muxes: one comb cell per bit drives the stage-0
        // register; local memories, the interconnect and the I/O glue all
        // feed these muxes through their own nets (single-driver netlist).
        let mut first_muxes = Vec::with_capacity(bits);
        for (bit, &reg) in stage_regs[0].iter().enumerate() {
            let mux = b.add_comb(format!("{dp_path}/in_mux_{bit}"), dp_path.clone());
            let n = b.add_net(format!("{dp_path}/stage0_d[{bit}]"));
            b.connect_driver(n, mux);
            b.connect_sink(n, reg);
            first_muxes.push(mux);
        }
        // stage-to-stage connections through combinational glue
        for s in 1..stage_regs.len() {
            for bit in 0..bits {
                let q = b.add_net(format!("{dp_path}/stage{}_q[{bit}]", s - 1));
                b.connect_driver(q, stage_regs[s - 1][bit]);
                let glue = b.add_comb(format!("{dp_path}/alu{s}_{bit}",), dp_path.clone());
                b.connect_sink(q, glue);
                // a second random operand from the same previous stage models datapath mixing
                let other_bit = rng.gen_range(0..bits);
                let other_q = b.add_net(format!("{dp_path}/stage{}_q[{other_bit}]", s - 1));
                b.connect_driver(other_q, stage_regs[s - 1][other_bit]);
                b.connect_sink(other_q, glue);
                let d = b.add_net(format!("{dp_path}/stage{s}_d[{bit}]"));
                b.connect_driver(d, glue);
                b.connect_sink(d, stage_regs[s][bit]);
            }
        }
        // last-stage output nets
        let last = stage_regs.len() - 1;
        let mut last_outputs = Vec::with_capacity(bits);
        for (bit, &reg) in stage_regs[last].iter().enumerate() {
            let n = b.add_net(format!("{dp_path}/stage{last}_q[{bit}]"));
            b.connect_driver(n, reg);
            last_outputs.push(n);
        }

        // --- memory <-> datapath traffic -------------------------------------
        // every macro reads the last stage and writes the first stage
        for (m_idx, &m) in macros.iter().enumerate() {
            let wr_bits = bits.clamp(1, 16);
            for bit in 0..wr_bits {
                let src = last_outputs[(m_idx + bit) % bits];
                b.connect_sink(src, m);
                let q = b.add_net(format!("{mem_path}/bank{m_idx}_q[{bit}]"));
                b.connect_driver(q, m);
                let glue = b.add_comb(format!("{mem_path}/rd_mux{m_idx}_{bit}"), mem_path.clone());
                b.connect_sink(q, glue);
                let rd_net = b.add_net(format!("{mem_path}/rd_data{m_idx}[{bit}]"));
                b.connect_driver(rd_net, glue);
                b.connect_sink(rd_net, first_muxes[(m_idx + bit) % bits]);
            }
        }

        // --- local glue logic -------------------------------------------------
        let glue_path = format!("{path}/u_ctl");
        for g in 0..(sub.glue_per_stage * sub.pipeline_stages.max(1)) {
            let cell = b.add_comb(format!("{glue_path}/g{g}"), glue_path.clone());
            // read a random datapath net, drive nothing critical (local control)
            let bit = rng.gen_range(0..bits);
            b.connect_sink(last_outputs[bit], cell);
        }
        let _ = s_idx;
        (first_muxes, last_outputs)
    }
}

/// Distributes the primary ports evenly along the die boundary (inputs on the
/// left and bottom edges, outputs on the right and top edges).
fn place_ports_on_boundary(design: &mut Design, die: Rect) {
    let ports: Vec<_> = design.port_ids().collect();
    if ports.is_empty() {
        return;
    }
    let inputs: Vec<_> = ports
        .iter()
        .copied()
        .filter(|&p| design.port(p).direction == PortDirection::Input)
        .collect();
    let outputs: Vec<_> = ports.iter().copied().filter(|p| !inputs.contains(p)).collect();
    for (i, &p) in inputs.iter().enumerate() {
        let frac = (i + 1) as f64 / (inputs.len() + 1) as f64;
        let pos = Point::new(die.llx, die.lly + (die.height() as f64 * frac) as Dbu);
        design.port_mut(p).position = Some(pos);
    }
    for (i, &p) in outputs.iter().enumerate() {
        let frac = (i + 1) as f64 / (outputs.len() + 1) as f64;
        let pos = Point::new(die.urx, die.lly + (die.height() as f64 * frac) as Dbu);
        design.port_mut(p).position = Some(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::CellKind;
    use netlist::hierarchy::HierarchyTree;

    fn small_config() -> SocConfig {
        SocConfig {
            name: "tiny".into(),
            subsystems: vec![
                SubsystemConfig::balanced("u_cpu", 4, 8),
                SubsystemConfig::balanced("u_dsp", 2, 8),
            ],
            channels: vec![(0, 1), (1, 0)],
            io_subsystems: vec![0],
            io_bits: 8,
            utilization: 0.5,
            aspect_ratio: 1.0,
            seed: 1,
        }
    }

    #[test]
    fn generates_requested_macros() {
        let g = SocGenerator::new(small_config()).generate();
        assert_eq!(g.design.num_macros(), 6);
        assert_eq!(g.config.total_macros(), 6);
        assert!(g.library.blocks().count() >= 1);
    }

    #[test]
    fn design_is_consistent_and_hierarchical() {
        let g = SocGenerator::new(small_config()).generate();
        g.design.validate().expect("consistent netlist");
        let ht = HierarchyTree::from_design(&g.design);
        assert!(ht.find("u_cpu").is_some());
        assert!(ht.find("u_cpu/u_mem").is_some());
        assert!(ht.find("u_cpu/u_dp").is_some());
        assert!(ht.find("u_noc").is_some());
        // all macros live under the memory groups
        for m in g.design.macros() {
            assert!(g.design.cell(m).hier_path.contains("u_mem"));
        }
    }

    #[test]
    fn die_respects_utilization() {
        let g = SocGenerator::new(small_config()).generate();
        let die_area = g.design.die().area() as f64;
        let cell_area = g.design.total_cell_area() as f64;
        let utilization = cell_area / die_area;
        assert!((utilization - 0.5).abs() < 0.05, "utilization {utilization}");
    }

    #[test]
    fn ports_are_on_the_boundary() {
        let g = SocGenerator::new(small_config()).generate();
        let die = g.design.die();
        assert!(g.design.num_ports() > 0);
        for (_, port) in g.design.ports() {
            let pos = port.position.expect("all ports placed");
            assert!(pos.x == die.llx || pos.x == die.urx || pos.y == die.lly || pos.y == die.ury);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = SocGenerator::new(small_config()).generate();
        let b = SocGenerator::new(small_config()).generate();
        assert_eq!(a.design, b.design);
    }

    #[test]
    fn has_sequential_and_combinational_logic() {
        let g = SocGenerator::new(small_config()).generate();
        let flops = g.design.cells().filter(|(_, c)| c.kind == CellKind::Flop).count();
        let combs = g.design.cells().filter(|(_, c)| c.kind == CellKind::Comb).count();
        assert!(flops > 16, "expected pipeline registers, got {flops}");
        assert!(combs > 32, "expected glue logic, got {combs}");
    }

    #[test]
    fn channels_create_cross_subsystem_paths() {
        let g = SocGenerator::new(small_config()).generate();
        // a register in u_noc must exist per channel bit
        let noc_regs = g
            .design
            .cells()
            .filter(|(_, c)| c.hier_path == "u_noc" && c.kind == CellKind::Flop)
            .count();
        assert_eq!(noc_regs, 2 * 8);
    }
}
