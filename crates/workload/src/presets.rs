//! Workload presets: the c1–c8 stand-ins and the paper's illustrative designs.
//!
//! Macro counts match Table III of the paper; cell counts are scaled down by
//! roughly 250× so that a full three-flow comparison runs on a laptop in
//! minutes rather than the hours a signoff-size design would need.  The
//! `paper_cells` field records the original size for reporting.

use crate::generator::{GeneratedDesign, SocConfig, SocGenerator, SubsystemConfig};
use geometry::{Dbu, Point, Rect};
use netlist::design::{Design, DesignBuilder, PortDirection};
use serde::{Deserialize, Serialize};

/// Description of one benchmark circuit of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitPreset {
    /// Circuit name (`c1` … `c8`).
    pub name: &'static str,
    /// Number of macros (matches the paper).
    pub macros: usize,
    /// Cell count of the original industrial design (millions), for reporting.
    pub paper_cells_millions: f64,
    /// Wirelength of the handcrafted floorplan in the paper (meters), for reporting.
    pub paper_handfp_wl_m: f64,
}

/// The eight circuits of Table III.
pub const PAPER_CIRCUITS: [CircuitPreset; 8] = [
    CircuitPreset { name: "c1", macros: 32, paper_cells_millions: 0.52, paper_handfp_wl_m: 12.81 },
    CircuitPreset { name: "c2", macros: 100, paper_cells_millions: 3.95, paper_handfp_wl_m: 38.97 },
    CircuitPreset { name: "c3", macros: 94, paper_cells_millions: 3.78, paper_handfp_wl_m: 38.16 },
    CircuitPreset { name: "c4", macros: 122, paper_cells_millions: 4.81, paper_handfp_wl_m: 38.35 },
    CircuitPreset { name: "c5", macros: 133, paper_cells_millions: 1.39, paper_handfp_wl_m: 38.06 },
    CircuitPreset { name: "c6", macros: 90, paper_cells_millions: 2.87, paper_handfp_wl_m: 74.87 },
    CircuitPreset { name: "c7", macros: 108, paper_cells_millions: 1.67, paper_handfp_wl_m: 35.29 },
    CircuitPreset { name: "c8", macros: 37, paper_cells_millions: 2.20, paper_handfp_wl_m: 25.17 },
];

/// Builds the generator configuration for one of the c1–c8 stand-ins.
///
/// # Panics
///
/// Panics if `name` is not one of `c1` … `c8`.
pub fn circuit_preset(name: &str) -> SocConfig {
    let preset = PAPER_CIRCUITS
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown circuit preset '{name}'"));
    let index = name[1..].parse::<u64>().unwrap_or(1);

    // Subsystem structure scales with the macro count; datapath width scales
    // with the original design size so bigger designs have more glue.
    let num_subsystems = (preset.macros / 12).clamp(3, 12);
    let base = preset.macros / num_subsystems;
    let mut remainder = preset.macros % num_subsystems;
    let bits = if preset.paper_cells_millions > 3.0 {
        48
    } else if preset.paper_cells_millions > 1.5 {
        32
    } else {
        24
    };
    // Macro footprint varies across circuits so macro-area dominance differs.
    let macro_size: (Dbu, Dbu) = match index % 3 {
        0 => (80_000, 40_000),
        1 => (60_000, 40_000),
        _ => (50_000, 30_000),
    };

    let mut subsystems = Vec::with_capacity(num_subsystems);
    for s in 0..num_subsystems {
        let extra = if remainder > 0 { 1 } else { 0 };
        remainder = remainder.saturating_sub(1);
        let mut sub = SubsystemConfig::balanced(format!("u_sub{s}"), base + extra, bits);
        sub.macro_size = macro_size;
        sub.pipeline_stages = 2 + (s % 3);
        subsystems.push(sub);
    }

    // Channels: a ring plus cross links between every other pair.
    let mut channels = Vec::new();
    for s in 0..num_subsystems {
        channels.push((s, (s + 1) % num_subsystems));
    }
    for s in (0..num_subsystems).step_by(2) {
        channels.push((s, (s + num_subsystems / 2) % num_subsystems));
    }

    SocConfig {
        name: preset.name.to_string(),
        subsystems,
        channels,
        io_subsystems: vec![0, num_subsystems / 2],
        io_bits: bits,
        utilization: 0.55,
        aspect_ratio: if index % 2 == 0 { 1.0 } else { 1.4 },
        seed: 0xC1AC0 + index,
    }
}

/// Generates one of the c1–c8 stand-ins, the `large_soc` scale scenario
/// (full ~90k-cell size — the table-experiment entry point treats it as a
/// ninth circuit), or the ~1M-cell `mega_soc` scale scenario.
pub fn generate_circuit(name: &str) -> GeneratedDesign {
    if name == "large_soc" {
        return large_soc();
    }
    if name == "mega_soc" {
        return mega_soc();
    }
    SocGenerator::new(circuit_preset(name)).generate()
}

/// Configuration of the `large_soc` scale preset: ~100k cells and 200 macros
/// across 16 subsystems — the scenario the dense data plane is sized for
/// (hash-map stores dominate the placer runtime well before this scale).
///
/// `scale ≤ 1.0` shrinks the glue/datapath budget proportionally (macro count
/// and subsystem count stay fixed, bit-exact with earlier revisions); `1.0` is
/// the full ~100k-cell design, small fractions make the same topology
/// affordable in debug-build tests.  `scale > 1.0` instead grows the
/// *subsystem count* (and with it the macro count) proportionally while each
/// subsystem keeps its full-scale glue budget — the million-cell axis: scale
/// 12 is the [`mega_soc`] preset (~1M cells, 2400 macros).
pub fn large_soc_config(scale: f64) -> SocConfig {
    let scale = scale.clamp(0.01, 16.0);
    let (num_subsystems, total_macros, glue_scale) = if scale <= 1.0 {
        (16usize, 200usize, scale)
    } else {
        (
            ((16.0 * scale).round() as usize).max(17),
            ((200.0 * scale).round() as usize).max(201),
            1.0,
        )
    };
    let base_macros = total_macros / num_subsystems;
    let extra_macros = total_macros % num_subsystems;
    SocConfig {
        name: "large_soc".into(),
        subsystems: (0..num_subsystems)
            .map(|s| {
                let bits = ((64.0 * glue_scale).round() as usize).max(4);
                SubsystemConfig {
                    name: format!("u_sub{s}"),
                    macros: base_macros + usize::from(s < extra_macros),
                    macro_size: (60_000, 40_000),
                    pipeline_stages: 4,
                    datapath_bits: bits,
                    glue_per_stage: ((1_150.0 * glue_scale).round() as usize).max(8),
                }
            })
            .collect(),
        channels: {
            let mut channels = Vec::new();
            for s in 0..num_subsystems {
                channels.push((s, (s + 1) % num_subsystems));
                channels.push((s, (s + 5) % num_subsystems));
            }
            channels
        },
        io_subsystems: (0..num_subsystems).step_by(4).collect(),
        io_bits: ((64.0 * glue_scale).round() as usize).max(4),
        utilization: 0.55,
        aspect_ratio: 1.2,
        seed: 0x1A26E50C,
    }
}

/// Generates the full-size `large_soc` preset (~100k cells, 200 macros).
pub fn large_soc() -> GeneratedDesign {
    SocGenerator::new(large_soc_config(1.0)).generate()
}

/// The scale factor of the `mega_soc` preset relative to `large_soc`.
pub const MEGA_SOC_SCALE: f64 = 12.0;

/// Configuration of the `mega_soc` preset: the million-cell scale axis.
///
/// This is [`large_soc_config`] at scale 12 — 192 subsystems, 2400 macros,
/// ~1.1M cells — under its own name (so it gets a distinct identity key in
/// the design store and the artifact cache).
pub fn mega_soc_config() -> SocConfig {
    let mut config = large_soc_config(MEGA_SOC_SCALE);
    config.name = "mega_soc".into();
    config
}

/// Generates the full ~1M-cell `mega_soc` preset.  Release builds only in
/// practice: debug-build generation takes minutes.
pub fn mega_soc() -> GeneratedDesign {
    SocGenerator::new(mega_soc_config()).generate()
}

/// Configuration of one design of the multi-design *service fleet*: a set of
/// distinct small SoCs (different names, topologies and seeds, so every
/// design has a distinct identity key) sized for multi-design service
/// benchmarks and tests. `scale` grows the glue/datapath budget; `0.1` keeps
/// a whole fleet affordable in debug-build tests.
pub fn service_fleet_config(index: usize, scale: f64) -> SocConfig {
    let scale = scale.clamp(0.01, 1.0);
    let num_subsystems = 6 + index % 3;
    let bits = ((64.0 * scale).round() as usize).max(4);
    let subsystems = (0..num_subsystems)
        .map(|s| SubsystemConfig {
            name: format!("u_s{s}"),
            // few macros per subsystem: fleet designs are datapath-heavy
            // (expensive derived artifacts) with a cheap macro placement
            macros: 1 + (index + s) % 2,
            macro_size: (40_000, 30_000),
            pipeline_stages: 4,
            datapath_bits: bits,
            glue_per_stage: ((1_150.0 * scale).round() as usize).max(8),
        })
        .collect();
    SocConfig {
        name: format!("fleet_{index}"),
        subsystems,
        channels: (0..num_subsystems).map(|s| (s, (s + 1) % num_subsystems)).collect(),
        io_subsystems: vec![0],
        io_bits: bits,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 0xF1EE7 + index as u64,
    }
}

/// Generates a fleet of `count` distinct designs (see
/// [`service_fleet_config`]).
pub fn service_fleet(count: usize, scale: f64) -> Vec<GeneratedDesign> {
    (0..count).map(|i| SocGenerator::new(service_fleet_config(i, scale)).generate()).collect()
}

/// The 16-macro, two-cluster design used to illustrate the multi-level flow
/// in Fig. 1 of the paper.
pub fn fig1_design() -> GeneratedDesign {
    let config = SocConfig {
        name: "fig1".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_left", 8, 16),
            SubsystemConfig::balanced("u_right", 8, 16),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 16,
        utilization: 0.45,
        aspect_ratio: 1.6,
        seed: 0xF161,
    };
    SocGenerator::new(config).generate()
}

/// The small system of Fig. 2 / Fig. 3: four single-macro blocks A–D
/// communicating through a standard-cell hub X.  A feeds B and C, B and C
/// feed D; all traffic crosses registers inside X, so block flow sees only
/// `*–X` edges while macro flow reveals the A→{B,C}→D structure.
pub fn fig3_design() -> Design {
    let mut b = DesignBuilder::new("fig3");
    let bits = 32usize;
    let macro_w: Dbu = 120_000;
    let macro_h: Dbu = 90_000;
    let names = ["u_a", "u_b", "u_c", "u_d"];
    let macros: Vec<_> = names
        .iter()
        .map(|n| b.add_macro(format!("{n}/mac"), "MACRO_BLOCK", macro_w, macro_h, n.to_string()))
        .collect();
    let connect = |b: &mut DesignBuilder, from: usize, to: &[usize], tag: &str| {
        for bit in 0..bits {
            let f = b.add_flop(format!("u_x/{tag}_reg[{bit}]"), "u_x");
            let n_in = b.add_net(format!("u_x/{tag}_d[{bit}]"));
            b.connect_driver(n_in, macros[from]);
            b.connect_sink(n_in, f);
            let n_out = b.add_net(format!("u_x/{tag}_q[{bit}]"));
            b.connect_driver(n_out, f);
            for &t in to {
                b.connect_sink(n_out, macros[t]);
            }
        }
    };
    connect(&mut b, 0, &[1, 2], "a2bc");
    connect(&mut b, 1, &[3], "b2d");
    connect(&mut b, 2, &[3], "c2d");
    // some glue logic inside X so it has standard-cell area of its own
    for g in 0..256 {
        b.add_comb(format!("u_x/ctl{g}"), "u_x");
    }
    // an input bus into A
    for bit in 0..bits {
        let p = b.add_port(format!("din[{bit}]"), PortDirection::Input);
        let n = b.add_net(format!("din_net[{bit}]"));
        b.connect_port_driver(n, p);
        b.connect_sink(n, macros[0]);
    }
    let mut design = b.build();
    let total = design.total_cell_area() as f64;
    let side = (total / 0.45).sqrt() as Dbu;
    let die = Rect::new(0, 0, side, side);
    design.set_die(die);
    for (i, pid) in design.port_ids().enumerate().collect::<Vec<_>>() {
        let frac = (i + 1) as f64 / (bits + 1) as f64;
        design.port_mut(pid).position = Some(Point::new(0, (die.height() as f64 * frac) as Dbu));
    }
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hierarchy::HierarchyTree;

    #[test]
    fn every_preset_matches_paper_macro_count() {
        for preset in &PAPER_CIRCUITS {
            let config = circuit_preset(preset.name);
            assert_eq!(config.total_macros(), preset.macros, "{}", preset.name);
        }
    }

    #[test]
    fn c1_generates_consistent_design() {
        let g = generate_circuit("c1");
        assert_eq!(g.design.num_macros(), 32);
        g.design.validate().expect("consistent design");
        assert!(g.design.num_cells() > 1000, "c1 should have substantial glue logic");
        assert!(g.design.die().area() > 0);
    }

    #[test]
    #[should_panic]
    fn unknown_preset_panics() {
        circuit_preset("c99");
    }

    #[test]
    fn fig1_has_sixteen_macros_in_two_clusters() {
        let g = fig1_design();
        assert_eq!(g.design.num_macros(), 16);
        let ht = HierarchyTree::from_design(&g.design);
        let left = ht.find("u_left").unwrap();
        let right = ht.find("u_right").unwrap();
        assert_eq!(ht.node(left).subtree_macros, 8);
        assert_eq!(ht.node(right).subtree_macros, 8);
    }

    #[test]
    fn fig3_structure_matches_paper_example() {
        let d = fig3_design();
        assert_eq!(d.num_macros(), 4);
        d.validate().unwrap();
        let ht = HierarchyTree::from_design(&d);
        // blocks A-D have one macro each, X has none but plenty of cells
        for name in ["u_a", "u_b", "u_c", "u_d"] {
            assert_eq!(ht.node(ht.find(name).unwrap()).subtree_macros, 1);
        }
        let x = ht.node(ht.find("u_x").unwrap());
        assert_eq!(x.subtree_macros, 0);
        assert!(x.subtree_cells > 256);
    }

    #[test]
    fn large_soc_config_has_200_macros() {
        let config = large_soc_config(1.0);
        assert_eq!(config.total_macros(), 200);
        assert_eq!(config.subsystems.len(), 16);
        // scaled-down variant keeps the macro count and topology
        let small = large_soc_config(0.05);
        assert_eq!(small.total_macros(), 200);
        assert_eq!(small.channels, config.channels);
    }

    #[test]
    fn large_soc_scaled_down_generates_consistently() {
        // the full ~100k-cell generation runs in the (release-built) bench
        // harness; tests exercise the same topology at 5% glue scale
        let g = SocGenerator::new(large_soc_config(0.05)).generate();
        assert_eq!(g.design.num_macros(), 200);
        g.design.validate().expect("consistent design");
        assert!(g.design.num_cells() > 2_000);
    }

    #[test]
    #[ignore = "generates the full ~100k-cell design; run with --ignored in release"]
    fn large_soc_full_scale_counts() {
        let g = large_soc();
        assert_eq!(g.design.num_macros(), 200);
        let cells = g.design.num_cells();
        assert!(
            (80_000..140_000).contains(&cells),
            "large_soc should have ~100k cells, got {cells}"
        );
        g.design.validate().expect("consistent design");
    }

    #[test]
    fn mega_soc_config_scales_subsystems_proportionally() {
        let config = mega_soc_config();
        assert_eq!(config.name, "mega_soc");
        assert_eq!(config.subsystems.len(), 192);
        assert_eq!(config.total_macros(), 2400);
        // per-subsystem glue stays at full-scale values: the scale axis grows
        // the design by adding subsystems, not by inflating one subsystem
        for sub in &config.subsystems {
            assert_eq!(sub.datapath_bits, 64);
            assert_eq!(sub.glue_per_stage, 1150);
        }
        assert_eq!(config.io_subsystems.len(), 48);
    }

    #[test]
    fn scale_clamp_is_bit_exact_below_one() {
        // lifting the clamp upward must not change any scale <= 1.0 config
        let full = large_soc_config(1.0);
        assert_eq!(full.subsystems.len(), 16);
        assert_eq!(full.total_macros(), 200);
        assert_eq!(full.io_subsystems, vec![0, 4, 8, 12]);
        assert_eq!(full.io_bits, 64);
        let tiny = large_soc_config(0.05);
        assert_eq!(tiny.subsystems.len(), 16);
        assert_eq!(tiny.total_macros(), 200);
        assert_eq!(tiny.subsystems[0].glue_per_stage, 58);
    }

    #[test]
    fn scale_axis_is_generation_stable_at_small_scale() {
        // the fast pinned twin of `mega_soc_full_scale_counts_and_identity`:
        // exact id-family counts and all three identity fingerprints of the
        // scale-0.05 config. Any drift in the generator, the scale axis or
        // the fingerprint hashing shows up here in a debug-build test run,
        // without waiting for the release-only million-cell twin.
        let g = SocGenerator::new(large_soc_config(0.05)).generate();
        assert_eq!(g.design.num_cells(), 5496);
        assert_eq!(g.design.num_nets(), 2400);
        assert_eq!(g.design.num_ports(), 32);
        assert_eq!(g.design.num_macros(), 200);
        assert_eq!(g.design.geometry_fingerprint(), 0x1cdb_c84d_1a0c_914d);
        assert_eq!(g.design.seq_name_fingerprint(), 0x3f5e_af78_a543_0fa5);
        assert_eq!(g.design.connectivity().fingerprint(), 0xf8a3_161d_0152_a5bc);
    }

    #[test]
    #[ignore = "generates the full ~1M-cell design; run with --ignored in release"]
    fn mega_soc_full_scale_counts_and_identity() {
        let g = mega_soc();
        // pinned id-family counts: the million-cell axis is deterministic,
        // so "about a million cells" is really exactly this many
        assert_eq!(g.design.num_cells(), 1_074_528);
        assert_eq!(g.design.num_nets(), 230_400);
        assert_eq!(g.design.num_ports(), 6_144);
        assert_eq!(g.design.num_macros(), 2400);
        // and the identity fingerprints the design store / artifact cache
        // key on — a silent generator change would repoint every cached
        // artifact, so it must be loud here
        assert_eq!(g.design.geometry_fingerprint(), 0xabec_bcda_4dd3_ccc5);
        assert_eq!(g.design.seq_name_fingerprint(), 0x5187_e717_3b75_1aeb);
        assert_eq!(g.design.connectivity().fingerprint(), 0x35dd_e36d_b908_50ad);
        g.design.validate().expect("consistent design");
    }

    #[test]
    fn service_fleet_designs_are_distinct_and_consistent() {
        let fleet = service_fleet(4, 0.1);
        assert_eq!(fleet.len(), 4);
        let mut names: Vec<&str> = fleet.iter().map(|g| g.design.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "fleet designs must have distinct names");
        for g in &fleet {
            g.design.validate().expect("consistent design");
            assert!(g.design.num_macros() >= 4);
            assert!(g.design.die().area() > 0);
        }
        // topologies differ too, not just the names
        assert_ne!(fleet[0].config.subsystems.len(), fleet[1].config.subsystems.len());
    }

    #[test]
    fn larger_presets_have_more_cells() {
        let c1 = generate_circuit("c1");
        let c4 = generate_circuit("c4");
        assert!(c4.design.num_cells() > c1.design.num_cells());
        assert!(c4.design.num_macros() > c1.design.num_macros());
    }
}
