//! Synthetic hierarchical SoC workloads for the HiDaP reproduction.
//!
//! The paper evaluates on eight proprietary industrial designs (c1–c8) whose
//! RTL hierarchy and array information cannot be redistributed.  This crate
//! provides the substitute described in `DESIGN.md`: a deterministic
//! generator of hierarchical, macro-dominated SoC netlists whose structural
//! features (hierarchy tree, memory subsystems, pipelined datapaths, port
//! buses, glue logic) exercise exactly the information HiDaP consumes.
//!
//! * [`generator`] — the parameterized SoC generator,
//! * [`presets`] — the c1–c8 stand-ins (macro counts match the paper, cell
//!   counts are scaled down for laptop runtimes) and the small designs used
//!   by Fig. 1 / Fig. 3,
//! * [`adversarial`] — the nasty-corner presets (high-fanout broadcast nets,
//!   pathological aspect ratios, macro-dominated dies, near-full utilization)
//!   and the seeded random ECO edit generator feeding the differential
//!   fuzzer,
//! * [`emit`] — structural Verilog / LEF / DEF emission so the parsers of the
//!   `netlist` crate can be exercised end to end.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod adversarial;
pub mod emit;
pub mod generator;
pub mod presets;

pub use adversarial::{
    adversarial_design, random_edits, random_geometry_edits, ADVERSARIAL_PRESETS,
};
pub use generator::{GeneratedDesign, SocConfig, SocGenerator, SubsystemConfig};
pub use presets::{
    circuit_preset, fig1_design, fig3_design, large_soc, large_soc_config, CircuitPreset,
    PAPER_CIRCUITS,
};
