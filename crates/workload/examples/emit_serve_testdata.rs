//! Regenerates `testdata/serve/` — the two fixed designs the CI serve-mode
//! smoke test interns over the wire (see `docs/PROTOCOL.md` and the
//! "Serve session smoke test" step in `.github/workflows/ci.yml`).
//!
//! Usage: `cargo run -p workload --example emit_serve_testdata -- testdata/serve`
//!
//! Prints the connectivity-resident heap bytes of each design so the
//! `--memory-budget` baked into `session.txt`'s CI invocation can be sized
//! between "small pinned" and "small + large pinned".

use netlist::HeapSize;
use workload::emit::{emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn soc_config(name: &str, bits: usize, seed: u64) -> SocConfig {
    SocConfig {
        name: name.into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 2, bits),
            SubsystemConfig::balanced("u_dsp", 2, bits),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed,
    }
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "testdata/serve".into());
    let dir = std::path::Path::new(&out);
    std::fs::create_dir_all(dir).expect("create output directory");

    for config in [soc_config("serve_small", 4, 5), soc_config("serve_large", 96, 7)] {
        let name = config.name.clone();
        let generated = SocGenerator::new(config).generate();
        std::fs::write(dir.join(format!("{name}.v")), emit_verilog(&generated.design))
            .expect("write verilog");
        std::fs::write(
            dir.join(format!("{name}.lef")),
            emit_lef(&generated.design, &generated.library, 1000),
        )
        .expect("write lef");
        generated.design.connectivity();
        println!("{name}: {} heap bytes with connectivity resident", generated.design.heap_bytes());
    }
}
