//! The daemon's line protocol: newline-delimited `key=value` frames.
//!
//! One frame per line. A frame is a bare *name* token followed by
//! `key=value` fields separated by whitespace:
//!
//! ```text
//! submit design=0 flow=hidap priority=5 seeds=1,2
//! ok cmd=submit job=0
//! event job=0 stage=flow-started flow=hidap seed=1
//! ```
//!
//! Values containing whitespace (or any character outside the bare-token
//! set) are double-quoted with `\"` / `\\` escapes, so every frame —
//! including error frames carrying free-form messages — survives a
//! parse → serialize → parse round trip unchanged. Blank lines and lines
//! starting with `#` are comments; [`parse_script`] skips them and reports
//! malformed lines with their 1-based line number.
//!
//! The full command/event vocabulary is documented in `docs/PROTOCOL.md` at
//! the repository root.

use std::fmt;

/// One protocol frame: a name plus ordered `key=value` fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame name (`submit`, `ok`, `event`, ...).
    pub name: String,
    /// The fields, in wire order (order is preserved by the round trip).
    pub fields: Vec<(String, String)>,
}

/// A malformed frame, located by its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Whether a string is a bare token (serializable without quotes).
fn is_bare(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ',' | '/'))
}

/// Quotes a value for the wire when it is not a bare token.
fn quote(value: &str) -> String {
    if is_bare(value) {
        return value.to_string();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

impl Frame {
    /// An empty frame with this name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), fields: Vec::new() }
    }

    /// Appends a field (builder style; values go through `Display`).
    pub fn field(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// The first value under a key, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Serializes the frame as one line (no trailing newline), quoting
    /// values as needed so [`Frame::parse`] round-trips it exactly.
    pub fn serialize(&self) -> String {
        let mut out = self.name.clone();
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            out.push_str(&quote(value));
        }
        out
    }

    /// Parses one line into a frame. The line must be non-empty and not a
    /// comment (script-level skipping lives in [`parse_script`]).
    pub fn parse(line: &str) -> Result<Frame, String> {
        let mut chars = line.trim().chars().peekable();
        let mut tokens: Vec<String> = Vec::new();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            // one token: bare chars and quoted runs may alternate (key="v")
            let mut token = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                if c == '"' {
                    chars.next();
                    let mut closed = false;
                    while let Some(c) = chars.next() {
                        match c {
                            '"' => {
                                closed = true;
                                break;
                            }
                            '\\' => match chars.next() {
                                Some(e @ ('"' | '\\')) => token.push(e),
                                Some(e) => {
                                    return Err(format!("unknown escape '\\{e}' in quoted value"))
                                }
                                None => return Err("unterminated escape in quoted value".into()),
                            },
                            c => token.push(c),
                        }
                    }
                    if !closed {
                        return Err("unterminated quoted value".into());
                    }
                } else {
                    token.push(c);
                    chars.next();
                }
            }
            tokens.push(token);
        }
        let Some((name, fields)) = tokens.split_first() else {
            return Err("empty frame".into());
        };
        if name.contains('=') {
            return Err(format!("frame name '{name}' must come before any key=value field"));
        }
        let mut frame = Frame::new(name.clone());
        for field in fields {
            let Some((key, value)) = field.split_once('=') else {
                return Err(format!("field '{field}' is not key=value"));
            };
            if key.is_empty() {
                return Err(format!("field '{field}' has an empty key"));
            }
            frame.fields.push((key.to_string(), value.to_string()));
        }
        Ok(frame)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

/// Parses a whole command script: one frame per line, blank lines and `#`
/// comments skipped, malformed lines rejected with their line number.
pub fn parse_script(input: &str) -> Result<Vec<Frame>, ParseError> {
    let mut frames = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match Frame::parse(trimmed) {
            Ok(frame) => frames.push(frame),
            Err(message) => return Err(ParseError { line: i + 1, message }),
        }
    }
    Ok(frames)
}

/// The spec an `intern` command carries, handed opaquely to the daemon's
/// [`crate::DesignLoader`]: every field of the frame except the name. The
/// CLI loader reads `verilog=`/`lef=`/`top=` paths; test and bench loaders
/// resolve `design=` against generated presets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternSpec {
    /// The intern frame's fields, in wire order.
    pub fields: Vec<(String, String)>,
}

impl InternSpec {
    /// The first value under a key, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// The spec a `submit` command carries.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Design handle the job places (from an earlier `intern` reply).
    pub design: u32,
    /// Flow name (`hidap`, `indeda`, ...).
    pub flow: String,
    /// Scheduling priority (default 0; higher drains first).
    pub priority: i32,
    /// Seeds to sweep (`seeds=1,2,3`); empty keeps the default `[1]`.
    pub seeds: Vec<u64>,
    /// λ values to sweep (`lambdas=0.2,0.8`); empty keeps the flow's λ.
    pub lambdas: Vec<f64>,
    /// Effort tier name (`fast`, `default`, `high`), when given.
    pub effort: Option<String>,
    /// Whether to evaluate results (`evaluate=standard`).
    pub evaluate: bool,
}

/// The spec a `replace` command carries: a submit plus the warm-start base
/// job and the textual ECO edit script (resolved against the design at
/// dispatch time — see `netlist::edit::parse_edit_script`).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaceSpec {
    /// The submit-shaped part: design, flow, priority, effort, evaluation.
    pub submit: SubmitSpec,
    /// The prior job whose held result seeds the warm start.
    pub base: u64,
    /// The textual edit script (`edits="resize u_a/ram 220 160; ..."`);
    /// empty means re-place with no design change (re-legalize only).
    pub edits: String,
}

/// A parsed client command frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `hello client=<name>` — register the session's client identity.
    Hello {
        /// Display name the client registers under.
        client: String,
    },
    /// `intern ...` — load a design into the store (loader-defined fields).
    Intern(InternSpec),
    /// `submit design=<h> flow=<name> [priority=] [seeds=] [lambdas=]
    /// [effort=] [evaluate=standard]` — queue a job.
    Submit(SubmitSpec),
    /// `replace design=<h> base=<job> [edits="<script>"] [flow=] [priority=]
    /// [effort=] [evaluate=standard]` — queue an incremental re-place of an
    /// edited design, warm-started from a prior job's held result.
    Replace(ReplaceSpec),
    /// `cancel job=<id>` — remove a still-queued job.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// `release design=<h>` — drop one reference to an interned design.
    Release {
        /// The design handle to release.
        design: u32,
    },
    /// `result job=<id>` — claim a finished job's result explicitly.
    Result {
        /// The job whose result to take.
        job: u64,
    },
    /// `stats` — snapshot the service and store accounting.
    Stats,
    /// `drain` — run every queued job (priority order), streaming events.
    Drain,
    /// `shutdown` — end the daemon.
    Shutdown,
}

/// Parses one required field through `FromStr`.
fn require<T: std::str::FromStr>(frame: &Frame, key: &str) -> Result<T, String> {
    let value = frame.get(key).ok_or_else(|| format!("'{}' needs a {key}= field", frame.name))?;
    value.parse().map_err(|_| format!("'{}' has a malformed {key}= field: '{value}'", frame.name))
}

/// Parses one optional field through `FromStr`.
fn optional<T: std::str::FromStr>(frame: &Frame, key: &str) -> Result<Option<T>, String> {
    match frame.get(key) {
        None => Ok(None),
        Some(value) => value
            .parse()
            .map(Some)
            .map_err(|_| format!("'{}' has a malformed {key}= field: '{value}'", frame.name)),
    }
}

/// Parses a comma-separated list field (absent ⇒ empty).
fn list<T: std::str::FromStr>(frame: &Frame, key: &str) -> Result<Vec<T>, String> {
    let Some(value) = frame.get(key) else { return Ok(Vec::new()) };
    value
        .split(',')
        .map(|item| {
            item.parse()
                .map_err(|_| format!("'{}' has a malformed {key}= entry: '{item}'", frame.name))
        })
        .collect()
}

/// Parses the submit-shaped fields shared by `submit` and `replace`.
fn submit_spec(frame: &Frame) -> Result<SubmitSpec, String> {
    let evaluate = match frame.get("evaluate") {
        None => false,
        Some("standard") => true,
        Some(other) => {
            return Err(format!(
                "'{}' has an unknown evaluate= value '{other}' (use 'standard')",
                frame.name
            ))
        }
    };
    Ok(SubmitSpec {
        design: require(frame, "design")?,
        flow: frame.get("flow").unwrap_or("hidap").to_string(),
        priority: optional(frame, "priority")?.unwrap_or(0),
        seeds: list(frame, "seeds")?,
        lambdas: list(frame, "lambdas")?,
        effort: frame.get("effort").map(str::to_string),
        evaluate,
    })
}

impl Command {
    /// Interprets a parsed frame as a client command.
    pub fn from_frame(frame: &Frame) -> Result<Command, String> {
        match frame.name.as_str() {
            "hello" => Ok(Command::Hello {
                client: frame.get("client").unwrap_or("anonymous").to_string(),
            }),
            "intern" => Ok(Command::Intern(InternSpec { fields: frame.fields.clone() })),
            "submit" => Ok(Command::Submit(submit_spec(frame)?)),
            "replace" => Ok(Command::Replace(ReplaceSpec {
                submit: submit_spec(frame)?,
                base: require(frame, "base")?,
                edits: frame.get("edits").unwrap_or("").to_string(),
            })),
            "cancel" => Ok(Command::Cancel { job: require(frame, "job")? }),
            "release" => Ok(Command::Release { design: require(frame, "design")? }),
            "result" => Ok(Command::Result { job: require(frame, "job")? }),
            "stats" => Ok(Command::Stats),
            "drain" => Ok(Command::Drain),
            "shutdown" => Ok(Command::Shutdown),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

/// Renders a stage event as the wire frame streamed during a drain, tagged
/// with the job it belongs to. Timing payloads (`wall_s`) are carried but
/// excluded from the daemon's determinism guarantee.
pub fn event_frame(job: u64, event: &placer_core::StageEvent) -> Frame {
    use placer_core::StageEvent as E;
    let base = Frame::new("event").field("job", job);
    match event {
        E::FlowStarted { flow, seed, lambda } => {
            let frame = base.field("stage", "flow-started").field("flow", flow).field("seed", seed);
            match lambda {
                Some(l) => frame.field("lambda", l),
                None => frame,
            }
        }
        E::HierarchyBuilt { nodes, macros } => {
            base.field("stage", "hierarchy-built").field("nodes", nodes).field("macros", macros)
        }
        E::ShapeCurvesReady { curves } => {
            base.field("stage", "shape-curves-ready").field("curves", curves)
        }
        E::LevelFloorplanned { depth, node, blocks } => base
            .field("stage", "level-floorplanned")
            .field("depth", depth)
            .field("node", if node.is_empty() { "top" } else { node })
            .field("blocks", blocks),
        E::FlippingDone { flipped } => {
            base.field("stage", "flipping-done").field("flipped", flipped)
        }
        E::LegalizationDone { moved } => {
            base.field("stage", "legalization-done").field("moved", moved)
        }
        E::FlowFinished { wall_s, legal } => {
            base.field("stage", "flow-finished").field("legal", legal).field("wall_s", wall_s)
        }
        E::BatchRunStarted { index, total, seed, lambda } => base
            .field("stage", "batch-run-started")
            .field("index", index)
            .field("total", total)
            .field("seed", seed)
            .field("lambda", lambda),
        E::BatchRunFinished { index, score } => {
            let frame = base.field("stage", "batch-run-finished").field("index", index);
            match score {
                Some(s) => frame.field("score", s),
                None => frame,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_frames_round_trip() {
        let line = "submit design=0 flow=hidap priority=5 seeds=1,2";
        let frame = Frame::parse(line).unwrap();
        assert_eq!(frame.name, "submit");
        assert_eq!(frame.get("design"), Some("0"));
        assert_eq!(frame.get("seeds"), Some("1,2"));
        assert_eq!(frame.serialize(), line);
        assert_eq!(Frame::parse(&frame.serialize()).unwrap(), frame);
    }

    #[test]
    fn quoted_values_round_trip() {
        let frame = Frame::new("err")
            .field("cmd", "submit")
            .field("reason", "client 'alice' already has 2 queued jobs (its quota)")
            .field("tricky", "a \"quote\" and a \\ backslash = #");
        let wire = frame.serialize();
        let reparsed = Frame::parse(&wire).unwrap();
        assert_eq!(reparsed, frame);
        assert_eq!(Frame::parse(&reparsed.serialize()).unwrap(), frame);
    }

    #[test]
    fn empty_values_round_trip() {
        let frame = Frame::new("event").field("node", "");
        let reparsed = Frame::parse(&frame.serialize()).unwrap();
        assert_eq!(reparsed.get("node"), Some(""));
        assert_eq!(reparsed, frame);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Frame::parse("").is_err());
        assert!(Frame::parse("submit design").unwrap_err().contains("not key=value"));
        assert!(Frame::parse("submit =0").unwrap_err().contains("empty key"));
        assert!(Frame::parse("name=first").unwrap_err().contains("frame name"));
        assert!(Frame::parse("err reason=\"unterminated").unwrap_err().contains("unterminated"));
        assert!(Frame::parse("err reason=\"bad \\x escape\"").unwrap_err().contains("escape"));
    }

    #[test]
    fn scripts_skip_comments_and_report_line_numbers() {
        let script = "# a comment\n\nhello client=ci\n  # indented comment\nsubmit design=0\n";
        let frames = parse_script(script).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].name, "hello");
        assert_eq!(frames[1].name, "submit");

        let bad = "hello client=ci\n\nsubmit design\n";
        let err = parse_script(bad).unwrap_err();
        assert_eq!(err.line, 3, "{err}");
        assert!(err.to_string().starts_with("line 3:"), "{err}");
    }

    #[test]
    fn commands_parse_from_frames() {
        let frame = Frame::parse("submit design=2 flow=hidap priority=-1 seeds=1,2 lambdas=0.25,0.75 effort=fast evaluate=standard").unwrap();
        match Command::from_frame(&frame).unwrap() {
            Command::Submit(spec) => {
                assert_eq!(spec.design, 2);
                assert_eq!(spec.flow, "hidap");
                assert_eq!(spec.priority, -1);
                assert_eq!(spec.seeds, vec![1, 2]);
                assert_eq!(spec.lambdas, vec![0.25, 0.75]);
                assert_eq!(spec.effort.as_deref(), Some("fast"));
                assert!(spec.evaluate);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        let frame = Frame::parse("submit flow=hidap").unwrap();
        assert!(Command::from_frame(&frame).unwrap_err().contains("design="));
        let frame = Frame::parse("submit design=zero").unwrap();
        assert!(Command::from_frame(&frame).unwrap_err().contains("malformed design="));
        let frame = Frame::parse("warp speed=9").unwrap();
        assert!(Command::from_frame(&frame).unwrap_err().contains("unknown command"));
    }

    #[test]
    fn replace_commands_parse_from_frames() {
        let frame = Frame::parse(
            "replace design=1 base=4 edits=\"resize u_a/ram 220 160; move u_b/ram 10 20\" \
             effort=fast evaluate=standard priority=2",
        )
        .unwrap();
        match Command::from_frame(&frame).unwrap() {
            Command::Replace(spec) => {
                assert_eq!(spec.submit.design, 1);
                assert_eq!(spec.base, 4);
                assert_eq!(spec.edits, "resize u_a/ram 220 160; move u_b/ram 10 20");
                assert_eq!(spec.submit.effort.as_deref(), Some("fast"));
                assert_eq!(spec.submit.priority, 2);
                assert!(spec.submit.evaluate);
            }
            other => panic!("expected replace, got {other:?}"),
        }
        // an empty edit script is a valid re-legalize-only replace
        let frame = Frame::parse("replace design=0 base=0").unwrap();
        match Command::from_frame(&frame).unwrap() {
            Command::Replace(spec) => assert!(spec.edits.is_empty()),
            other => panic!("expected replace, got {other:?}"),
        }
        let frame = Frame::parse("replace design=0").unwrap();
        assert!(Command::from_frame(&frame).unwrap_err().contains("base="));
    }

    #[test]
    fn event_frames_tag_the_job_and_round_trip() {
        use placer_core::StageEvent;
        let events = [
            StageEvent::FlowStarted { flow: "hidap".into(), seed: 7, lambda: Some(0.5) },
            StageEvent::LevelFloorplanned { depth: 0, node: String::new(), blocks: 4 },
            StageEvent::FlowFinished { wall_s: 0.25, legal: true },
            StageEvent::BatchRunFinished { index: 1, score: Some(1234.5) },
        ];
        for event in &events {
            let frame = event_frame(3, event);
            assert_eq!(frame.get("job"), Some("3"));
            assert_eq!(Frame::parse(&frame.serialize()).unwrap(), frame);
        }
        assert_eq!(event_frame(0, &events[1]).get("node"), Some("top"));
    }
}
