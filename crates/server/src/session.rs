//! The daemon session loop: commands in, replies and streamed events out.
//!
//! A [`Server`] owns the scheduling layer ([`placer_core::Scheduler`]) and a
//! [`DesignLoader`] that turns `intern` specs into designs (the CLI loads
//! Verilog/LEF from disk; tests and benches resolve generated presets). One
//! call to [`Server::serve_once`] runs one session — read a command line,
//! answer with one or more frames, repeat until `shutdown` or EOF. The
//! server (and with it the warm [`placer_core::DesignStore`]) outlives the
//! session, so a unix-socket deployment ([`Server::serve_unix`]) keeps
//! designs and artifacts resident across client connections.
//!
//! # Determinism
//!
//! Jobs drain serially in priority order (stable within equal priority),
//! admission and quota decisions are pure functions of scheduler state, and
//! event frames stream from the single drain thread — so the same command
//! script always produces the same frames in the same order, except for
//! timing payloads (`wall_s=`, `score=`). `docs/PROTOCOL.md` states the
//! guarantee precisely.

use crate::protocol::{event_frame, Command, Frame, InternSpec, ReplaceSpec, SubmitSpec};
use netlist::design::Design;
use placer_core::{
    ClientId, DesignHandle, EffortLevel, FlowObserver, JobId, JobResult, PlaceError, PlaceJob,
    Scheduler, StageEvent,
};
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A design produced by a [`DesignLoader`].
pub struct LoadedDesign {
    /// The loaded design, die area set.
    pub design: Design,
    /// Database units per micron of its geometry (reported in the `intern`
    /// reply so clients can convert wirelength numbers).
    pub dbu: i64,
}

/// Turns an `intern` spec into a design. The daemon core stays transport-
/// and format-agnostic: the CLI installs a file loader (Verilog/LEF paths),
/// tests and benches install preset loaders.
pub trait DesignLoader {
    /// Loads the design an `intern` command names, or explains why not.
    fn load(&mut self, spec: &InternSpec) -> Result<LoadedDesign, String>;
}

impl<F: FnMut(&InternSpec) -> Result<LoadedDesign, String>> DesignLoader for F {
    fn load(&mut self, spec: &InternSpec) -> Result<LoadedDesign, String> {
        self(spec)
    }
}

/// How a session ended: a `shutdown` command (stop the daemon) or EOF on
/// the command stream (this client left; the daemon can serve the next).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client asked the daemon to stop.
    Shutdown,
    /// The command stream ended.
    Eof,
}

/// A cloneable writer sharing one underlying sink behind a mutex, so the
/// session loop and the per-job [`FlowObserver`]s (which stream events from
/// inside the drain) can interleave whole frames on one output stream.
pub struct SharedWriter<W> {
    inner: Arc<Mutex<W>>,
}

impl<W> SharedWriter<W> {
    /// Wraps a sink.
    pub fn new(writer: W) -> Self {
        Self { inner: Arc::new(Mutex::new(writer)) }
    }

    /// Locks the sink (tests use this to inspect a captured transcript).
    /// A poisoned mutex is recovered rather than propagated: the sink is a
    /// byte pipe with no invariants a panicked holder could have broken,
    /// and dying here would take the whole daemon down with it.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, W> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<W> Clone for SharedWriter<W> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<W: Write> Write for SharedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.lock().write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.lock().flush()
    }
}

/// Adapts [`FlowObserver`] stage callbacks into `event` frames tagged with
/// the observed job's id. The id is set right after submission (the job is
/// only constructed before its id exists; it never runs before the set).
struct FrameObserver<W> {
    job: AtomicU64,
    writer: SharedWriter<W>,
}

impl<W> FrameObserver<W> {
    fn new(writer: SharedWriter<W>) -> Self {
        Self { job: AtomicU64::new(u64::MAX), writer }
    }

    fn set_job(&self, id: JobId) {
        self.job.store(id.0, Ordering::Relaxed);
    }
}

impl<W: Write + Send + 'static> FlowObserver for FrameObserver<W> {
    fn on_event(&self, event: &StageEvent) {
        let frame = event_frame(self.job.load(Ordering::Relaxed), event);
        // a client that hung up mid-drain must not kill the daemon; the
        // session loop notices the dead stream on its next own write
        let _ = writeln!(self.writer.clone(), "{frame}");
    }
}

/// The placement daemon: scheduler + loader + session loop. See the
/// [module docs](crate::session).
pub struct Server {
    sched: Scheduler,
    loader: Box<dyn DesignLoader>,
    client: Option<ClientId>,
}

impl Server {
    /// A server over a scheduling layer and a design loader.
    pub fn new(scheduler: Scheduler, loader: impl DesignLoader + 'static) -> Self {
        Self { sched: scheduler, loader: Box::new(loader), client: None }
    }

    /// The scheduling layer (for out-of-band introspection in tests).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Serves one session: reads command lines from `reader` until
    /// `shutdown` or EOF, writing reply and event frames to `writer`. The
    /// store stays warm for the next session on the same server.
    pub fn serve_once<R: BufRead, W: Write + Send + 'static>(
        &mut self,
        reader: R,
        writer: W,
    ) -> io::Result<SessionEnd> {
        let mut out = SharedWriter::new(writer);
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let lineno = i + 1;
            let frame = match Frame::parse(trimmed) {
                Ok(frame) => frame,
                Err(message) => {
                    reply(
                        &mut out,
                        Frame::new("err")
                            .field("line", lineno)
                            .field("code", "parse")
                            .field("reason", message),
                    )?;
                    continue;
                }
            };
            let command = match Command::from_frame(&frame) {
                Ok(command) => command,
                Err(message) => {
                    reply(
                        &mut out,
                        Frame::new("err")
                            .field("cmd", &frame.name)
                            .field("line", lineno)
                            .field("code", "bad-command")
                            .field("reason", message),
                    )?;
                    continue;
                }
            };
            if self.dispatch(command, &mut out)? == SessionEnd::Shutdown {
                return Ok(SessionEnd::Shutdown);
            }
        }
        Ok(SessionEnd::Eof)
    }

    /// Binds a unix socket and serves connections one at a time until a
    /// client sends `shutdown`. The store stays warm across connections —
    /// this is the deployment shape where artifact reuse pays off.
    #[cfg(unix)]
    pub fn serve_unix(&mut self, path: &std::path::Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let reader = io::BufReader::new(stream.try_clone()?);
            // a session dropping its connection mid-command must not take
            // the daemon down with it
            match self.serve_once(reader, stream) {
                Ok(SessionEnd::Shutdown) => break,
                Ok(SessionEnd::Eof) | Err(_) => continue,
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Executes one command, writing its reply frames.
    fn dispatch<W: Write + Send + 'static>(
        &mut self,
        command: Command,
        out: &mut SharedWriter<W>,
    ) -> io::Result<SessionEnd> {
        match command {
            Command::Hello { client } => {
                let id = self.sched.register_client(&client);
                self.client = Some(id);
                reply(
                    out,
                    Frame::new("ok")
                        .field("cmd", "hello")
                        .field("client", id.0)
                        .field("name", client)
                        .field("quota", self.sched.quota()),
                )?;
            }
            Command::Intern(spec) => self.handle_intern(&spec, out)?,
            Command::Submit(spec) => self.handle_submit(&spec, out)?,
            Command::Replace(spec) => self.handle_replace(&spec, out)?,
            Command::Cancel { job } => {
                if self.sched.cancel(JobId(job)) {
                    reply(out, Frame::new("ok").field("cmd", "cancel").field("job", job))?;
                } else {
                    reply(
                        out,
                        Frame::new("err")
                            .field("cmd", "cancel")
                            .field("code", "invalid-request")
                            .field("job", job)
                            .field("reason", format!("job {job} is not queued")),
                    )?;
                }
            }
            Command::Release { design } => {
                if (design as usize) < self.sched.service().store().len() {
                    let refs = self.sched.service_mut().release(DesignHandle(design));
                    self.sched.service_mut().store_mut().reclaim();
                    let resident = self.sched.service().store().is_resident(DesignHandle(design));
                    reply(
                        out,
                        Frame::new("ok")
                            .field("cmd", "release")
                            .field("design", design)
                            .field("refs", refs)
                            .field("resident", resident),
                    )?;
                } else {
                    reply(
                        out,
                        Frame::new("err")
                            .field("cmd", "release")
                            .field("code", "invalid-request")
                            .field("design", design)
                            .field("reason", format!("design {design} was never interned")),
                    )?;
                }
            }
            Command::Result { job } => match self.sched.take_result(JobId(job)) {
                None => reply(
                    out,
                    Frame::new("err")
                        .field("cmd", "result")
                        .field("code", "pending")
                        .field("job", job)
                        .field("reason", format!("job {job} is still queued; drain first")),
                )?,
                Some(Ok(result)) => {
                    reply(out, job_done_frame(&result))?;
                    reply(out, Frame::new("ok").field("cmd", "result").field("job", job))?;
                }
                Some(Err(error)) => reply(out, error_frame("result", Some(job), &error))?,
            },
            Command::Stats => self.handle_stats(out)?,
            Command::Drain => self.handle_drain(out)?,
            Command::Shutdown => {
                reply(out, Frame::new("ok").field("cmd", "shutdown"))?;
                return Ok(SessionEnd::Shutdown);
            }
        }
        Ok(SessionEnd::Eof)
    }

    fn handle_intern<W: Write + Send + 'static>(
        &mut self,
        spec: &InternSpec,
        out: &mut SharedWriter<W>,
    ) -> io::Result<()> {
        let loaded = match self.loader.load(spec) {
            Ok(loaded) => loaded,
            Err(reason) => {
                return reply(
                    out,
                    Frame::new("err")
                        .field("cmd", "intern")
                        .field("code", "load-failed")
                        .field("reason", reason),
                );
            }
        };
        let name = loaded.design.name().to_string();
        let handle = self.sched.service_mut().intern(loaded.design);
        let store = self.sched.service().store();
        reply(
            out,
            Frame::new("ok")
                .field("cmd", "intern")
                .field("design", handle.0)
                .field("name", name)
                .field("bytes", store.design_bytes_of(handle))
                .field("refs", store.ref_count(handle))
                .field("resident", store.is_resident(handle))
                .field("dbu", loaded.dbu),
        )
    }

    fn handle_submit<W: Write + Send + 'static>(
        &mut self,
        spec: &SubmitSpec,
        out: &mut SharedWriter<W>,
    ) -> io::Result<()> {
        let Some(client) = self.client else {
            return reply(
                out,
                Frame::new("err")
                    .field("cmd", "submit")
                    .field("code", "no-client")
                    .field("reason", "send 'hello client=<name>' before submitting jobs"),
            );
        };
        let effort = match spec.effort.as_deref() {
            None => None,
            Some(name) => match EffortLevel::parse(name) {
                Some(effort) => Some(effort),
                None => {
                    return reply(
                        out,
                        Frame::new("err")
                            .field("cmd", "submit")
                            .field("code", "bad-command")
                            .field(
                                "reason",
                                format!("unknown effort '{name}' (use fast, default or high)"),
                            ),
                    );
                }
            },
        };
        let observer = Arc::new(FrameObserver::new(out.clone()));
        let mut job = PlaceJob::new(DesignHandle(spec.design), &spec.flow)
            .with_priority(spec.priority)
            .with_observer(observer.clone());
        if !spec.seeds.is_empty() {
            job = job.with_seeds(spec.seeds.clone());
        }
        if !spec.lambdas.is_empty() {
            job = job.with_lambdas(spec.lambdas.clone());
        }
        if let Some(effort) = effort {
            job = job.with_effort(effort);
        }
        if spec.evaluate {
            job = job.with_evaluation(eval::EvalConfig::standard());
        }
        match self.sched.submit(client, job) {
            Ok(id) => {
                observer.set_job(id);
                reply(
                    out,
                    Frame::new("ok")
                        .field("cmd", "submit")
                        .field("job", id.0)
                        .field("design", spec.design)
                        .field("priority", spec.priority),
                )
            }
            Err(error) => reply(out, error_frame("submit", None, &error)),
        }
    }

    /// Handles a `replace` command: resolves the textual edit script against
    /// the interned design, then queues an incremental re-place job
    /// warm-started from the base job's held result.
    fn handle_replace<W: Write + Send + 'static>(
        &mut self,
        spec: &ReplaceSpec,
        out: &mut SharedWriter<W>,
    ) -> io::Result<()> {
        let Some(client) = self.client else {
            return reply(
                out,
                Frame::new("err")
                    .field("cmd", "replace")
                    .field("code", "no-client")
                    .field("reason", "send 'hello client=<name>' before submitting jobs"),
            );
        };
        let effort = match spec.submit.effort.as_deref() {
            None => None,
            Some(name) => match EffortLevel::parse(name) {
                Some(effort) => Some(effort),
                None => {
                    return reply(
                        out,
                        Frame::new("err")
                            .field("cmd", "replace")
                            .field("code", "bad-command")
                            .field(
                                "reason",
                                format!("unknown effort '{name}' (use fast, default or high)"),
                            ),
                    );
                }
            },
        };
        let handle = DesignHandle(spec.submit.design);
        let store = self.sched.service().store();
        if (spec.submit.design as usize) >= store.len() {
            return reply(
                out,
                Frame::new("err")
                    .field("cmd", "replace")
                    .field("code", "invalid-request")
                    .field("design", spec.submit.design)
                    .field("reason", format!("design {} was never interned", spec.submit.design)),
            );
        }
        let Some(design) = store.get_design(handle) else {
            return reply(
                out,
                Frame::new("err")
                    .field("cmd", "replace")
                    .field("code", "invalid-request")
                    .field("design", spec.submit.design)
                    .field(
                        "reason",
                        format!(
                            "design {} was evicted; re-intern it before replacing",
                            spec.submit.design
                        ),
                    ),
            );
        };
        let edits = match netlist::edit::parse_edit_script(&spec.edits, design) {
            Ok(edits) => edits,
            Err(error) => {
                return reply(
                    out,
                    Frame::new("err")
                        .field("cmd", "replace")
                        .field("code", "bad-edit-script")
                        .field("reason", error.to_string()),
                );
            }
        };
        let num_edits = edits.len();
        let observer = Arc::new(FrameObserver::new(out.clone()));
        let mut job = PlaceJob::new(handle, &spec.submit.flow)
            .with_priority(spec.submit.priority)
            .with_observer(observer.clone())
            .with_replace(JobId(spec.base), edits);
        if !spec.submit.seeds.is_empty() {
            job = job.with_seeds(spec.submit.seeds.clone());
        }
        if !spec.submit.lambdas.is_empty() {
            job = job.with_lambdas(spec.submit.lambdas.clone());
        }
        if let Some(effort) = effort {
            job = job.with_effort(effort);
        }
        if spec.submit.evaluate {
            job = job.with_evaluation(eval::EvalConfig::standard());
        }
        match self.sched.submit(client, job) {
            Ok(id) => {
                observer.set_job(id);
                reply(
                    out,
                    Frame::new("ok")
                        .field("cmd", "replace")
                        .field("job", id.0)
                        .field("design", spec.submit.design)
                        .field("base", spec.base)
                        .field("edits", num_edits)
                        .field("priority", spec.submit.priority),
                )
            }
            Err(error) => reply(out, error_frame("replace", None, &error)),
        }
    }

    fn handle_stats<W: Write + Send + 'static>(
        &mut self,
        out: &mut SharedWriter<W>,
    ) -> io::Result<()> {
        let stats = self.sched.service().stats();
        reply(
            out,
            Frame::new("stats")
                .field("queued", stats.queued)
                .field("peak_queued", stats.peak_queued)
                .field("completed", stats.completed)
                .field("interned", stats.interned_designs)
                .field("resident", stats.resident_designs)
                .field("design_bytes", stats.design_bytes)
                .field("artifact_bytes", stats.artifact_bytes)
                .field("resident_bytes", stats.resident_bytes)
                .field("peak_bytes", stats.peak_resident_bytes)
                .field("budget", stats.memory_budget.map_or("none".to_string(), |b| b.to_string()))
                .field("design_evictions", stats.design_evictions),
        )?;
        for (kind, counters) in [("net", stats.artifacts.net), ("seq", stats.artifacts.seq)] {
            reply(
                out,
                Frame::new("artifact")
                    .field("kind", kind)
                    .field("hits", counters.hits)
                    .field("misses", counters.misses)
                    .field("evictions", counters.evictions)
                    .field("spills", counters.spills)
                    .field("revives", counters.revives),
            )?;
        }
        reply(
            out,
            Frame::new("spill")
                .field("csr_spills", stats.csr_spills)
                .field("csr_revives", stats.csr_revives)
                .field("seed_spills", stats.seed_spills)
                .field("seed_revives", stats.seed_revives),
        )?;
        let store = self.sched.service().store();
        for i in 0..store.len() {
            let handle = DesignHandle(i as u32);
            reply(
                out,
                Frame::new("design")
                    .field("design", handle.0)
                    .field("name", store.key(handle).name())
                    .field("bytes", store.design_bytes_of(handle))
                    .field("refs", store.ref_count(handle))
                    .field("resident", store.is_resident(handle)),
            )?;
        }
        for record in store.eviction_log() {
            reply(
                out,
                Frame::new("evicted")
                    .field("design", record.handle.0)
                    .field("name", &record.name)
                    .field("bytes", record.bytes)
                    .field("at", record.at),
            )?;
        }
        reply(out, Frame::new("ok").field("cmd", "stats"))
    }

    fn handle_drain<W: Write + Send + 'static>(
        &mut self,
        out: &mut SharedWriter<W>,
    ) -> io::Result<()> {
        // capture the deterministic drain order before running: job-done
        // frames come back in execution (priority) order
        let service = self.sched.service();
        let mut order: Vec<(usize, JobId)> = Vec::new();
        for id in (0..service.next_job_id()).map(JobId) {
            if let placer_core::JobState::Queued { position, .. } = service.job_state(id) {
                order.push((position, id));
            }
        }
        order.sort_unstable();
        let ran = self.sched.drain();
        for (_, id) in order {
            match self.sched.take_result(id) {
                Some(Ok(result)) => reply(out, job_done_frame(&result))?,
                Some(Err(error)) => reply(out, error_frame("job", Some(id.0), &error))?,
                None => {}
            }
        }
        reply(out, Frame::new("ok").field("cmd", "drain").field("ran", ran))
    }
}

/// Writes one frame as one line.
fn reply<W: Write>(out: &mut SharedWriter<W>, frame: Frame) -> io::Result<()> {
    writeln!(out, "{frame}")
}

/// The completion frame of a successful job, carrying the winning run and
/// its metrics (when the job evaluated).
fn job_done_frame(result: &JobResult) -> Frame {
    let outcome = &result.outcome;
    let mut frame = Frame::new("job-done")
        .field("job", result.job.0)
        .field("design", result.design.0)
        .field("flow", &outcome.flow)
        .field("seed", outcome.seed)
        .field("runs", result.runs.len())
        .field("winner", result.winner_index)
        .field("macros", outcome.placement.macros.len());
    if let Some(lambda) = outcome.lambda {
        frame = frame.field("lambda", lambda);
    }
    if let Some(log) = &result.edit_log {
        frame = frame
            .field("edits_applied", log.applied)
            .field("pure_geometry", log.diff.is_pure_geometry());
    }
    if let Some(metrics) = &outcome.metrics {
        frame = frame
            .field("hpwl_dbu", metrics.hpwl.dbu)
            .field("wirelength_m", metrics.wirelength_m)
            .field("grc_percent", metrics.grc_percent())
            .field("wns_percent", metrics.wns_percent())
            .field("tns_ns", metrics.tns_ns());
    }
    frame.field("wall_s", outcome.wall_s)
}

/// Maps an engine error onto a protocol `err` frame with a structured code
/// (and, for policy rejections, the numbers behind the decision).
fn error_frame(cmd: &str, job: Option<u64>, error: &PlaceError) -> Frame {
    let mut frame = Frame::new("err").field("cmd", cmd);
    if let Some(job) = job {
        frame = frame.field("job", job);
    }
    let code = match error {
        PlaceError::Cancelled => "cancelled",
        PlaceError::DeadlineExceeded => "deadline-exceeded",
        PlaceError::InvalidRequest(_) => "invalid-request",
        PlaceError::AdmissionRejected { design, pinned_bytes, budget_bytes } => {
            frame = frame
                .field("design", design)
                .field("pinned_bytes", pinned_bytes)
                .field("budget_bytes", budget_bytes);
            "admission-rejected"
        }
        PlaceError::QuotaExceeded { quota, .. } => {
            frame = frame.field("quota", quota);
            "quota-exceeded"
        }
        PlaceError::UnknownFlow { .. } => "unknown-flow",
        PlaceError::Flow(_) => "flow-failed",
    };
    frame.field("code", code).field("reason", error.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_writer_recovers_from_a_poisoned_lock() {
        // regression: a FlowObserver panicking while holding the writer lock
        // used to poison it, turning every later reply into a second panic
        // and killing the session (hidap-lint rule daemon-panic)
        let writer = SharedWriter::new(Vec::new());
        let poisoner = writer.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock();
            panic!("observer dies while holding the writer");
        })
        .join();
        let mut survivor = writer.clone();
        survivor.write_all(b"still alive\n").expect("Vec write cannot fail");
        assert_eq!(&*writer.lock(), b"still alive\n");
    }
}
