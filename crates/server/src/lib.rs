//! The hidap placement daemon: `hidap --serve` behind the CLI.
//!
//! This crate turns the scheduling layer of `placer-core` into a long-lived
//! service speaking a newline-delimited `key=value` line protocol:
//!
//! * [`protocol`] — frame parse/serialize (round-trip exact, malformed
//!   lines rejected with line numbers), the [`Command`] vocabulary
//!   (`hello`, `intern`, `submit`, `cancel`, `release`, `result`, `stats`,
//!   `drain`, `shutdown`), and the [`event_frame`] adapter turning
//!   [`placer_core::FlowObserver`] stage callbacks into `event` frames
//!   tagged with their job id,
//! * [`session`] — the [`Server`] loop: one session over any
//!   `BufRead`/`Write` pair (stdin/stdout under `hidap --serve`, a unix
//!   socket under `--socket`, in-memory buffers in tests), with the design
//!   store staying warm across sessions.
//!
//! The wire format, every frame, and the daemon's determinism guarantee are
//! documented in `docs/PROTOCOL.md`.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
#![deny(clippy::unwrap_used)]

pub mod protocol;
pub mod session;

pub use protocol::{event_frame, parse_script, Command, Frame, InternSpec, ParseError, SubmitSpec};
pub use session::{DesignLoader, LoadedDesign, Server, SessionEnd, SharedWriter};
