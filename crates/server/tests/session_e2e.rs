//! Scripted end-to-end daemon sessions: the full protocol loop against a
//! real scheduler, asserting admission control, priority ordering, stats
//! contents and handle revival — all over the wire.

use placer_core::{DesignStore, PlacementService, Scheduler};
use server::{Frame, InternSpec, LoadedDesign, Server, SessionEnd, SharedWriter};
use workload::SocGenerator;

/// A loader resolving `design=<preset>` against generated designs: `small`
/// and `large` differ enough in size that a budget can hold one but not
/// both.
fn preset_loader() -> impl FnMut(&InternSpec) -> Result<LoadedDesign, String> {
    |spec: &InternSpec| {
        let name = spec.get("design").ok_or_else(|| "intern needs a design= field".to_string())?;
        let design = preset(name).ok_or_else(|| format!("unknown preset '{name}'"))?;
        Ok(LoadedDesign { design, dbu: 1000 })
    }
}

fn preset(name: &str) -> Option<netlist::design::Design> {
    let config = match name {
        "small" => workload::presets::service_fleet_config(0, 0.05),
        "large" => workload::presets::service_fleet_config(1, 0.4),
        _ => return None,
    };
    Some(SocGenerator::new(config).generate().design)
}

/// Bytes a preset will pin once interned (CSR view included).
fn preset_bytes(name: &str) -> usize {
    use netlist::HeapSize;
    let design = preset(name).unwrap();
    design.connectivity();
    design.heap_bytes()
}

/// A server whose store holds `small` (pinned) but not `small` + `large`.
fn tight_server() -> Server {
    let budget = preset_bytes("small") + preset_bytes("large") / 2;
    let service = PlacementService::with_store(
        placer_core::builtin_registry(),
        DesignStore::with_memory_budget(budget),
    )
    .with_jobs(1);
    Server::new(Scheduler::with_service(service), preset_loader())
}

/// Runs one scripted session, returning the transcript parsed frame by
/// frame (which also exercises the round trip on every reply the daemon
/// writes).
fn run_script(server: &mut Server, script: &str) -> (SessionEnd, Vec<Frame>) {
    let out = SharedWriter::new(Vec::new());
    let end = server.serve_once(script.as_bytes(), out.clone()).expect("session io");
    let transcript = String::from_utf8(out.lock().clone()).expect("utf8 transcript");
    let frames = transcript
        .lines()
        .map(|line| Frame::parse(line).unwrap_or_else(|e| panic!("bad frame '{line}': {e}")))
        .collect();
    (end, frames)
}

/// Frames with a given name, in transcript order.
fn named<'a>(frames: &'a [Frame], name: &str) -> Vec<&'a Frame> {
    frames.iter().filter(|f| f.name == name).collect()
}

#[test]
fn scripted_session_enforces_admission_priorities_and_revival() {
    let mut server = tight_server();
    let script = "\
# warm-up: one client, two designs, three prioritized jobs
hello client=ci
intern design=small
submit design=0 flow=hidap effort=fast seeds=11 priority=0 evaluate=standard
submit design=0 flow=hidap effort=fast seeds=12 priority=5 evaluate=standard
intern design=large
submit design=1 flow=hidap effort=fast seeds=13
drain
stats
release design=1
release design=0
stats
intern design=small
stats
shutdown
";
    let (end, frames) = run_script(&mut server, script);
    assert_eq!(end, SessionEnd::Shutdown);

    // hello
    let hello = &named(&frames, "ok")[0];
    assert_eq!(hello.get("cmd"), Some("hello"));
    assert_eq!(hello.get("client"), Some("0"));

    // interns: small got handle 0, large handle 1
    let interns: Vec<&Frame> =
        frames.iter().filter(|f| f.name == "ok" && f.get("cmd") == Some("intern")).collect();
    assert_eq!(interns.len(), 3, "two cold interns plus the revival");
    assert_eq!(interns[0].get("design"), Some("0"));
    assert_eq!(interns[1].get("design"), Some("1"));
    assert_eq!(interns[0].get("resident"), Some("true"));

    // the third submit (against the large design) was admission-rejected,
    // with the structured numbers and the remedy on the wire
    let errs = named(&frames, "err");
    assert_eq!(errs.len(), 1, "exactly one rejection: {errs:?}");
    let rejected = errs[0];
    assert_eq!(rejected.get("cmd"), Some("submit"));
    assert_eq!(rejected.get("code"), Some("admission-rejected"));
    let pinned: usize = rejected.get("pinned_bytes").unwrap().parse().unwrap();
    let budget: usize = rejected.get("budget_bytes").unwrap().parse().unwrap();
    assert!(pinned > budget, "{pinned} must exceed {budget}");
    assert!(rejected.get("reason").unwrap().contains("release designs"), "remedy is named");

    // the drain ran the two admitted jobs in priority order: job 1
    // (priority 5) before job 0, and the streamed events interleave the
    // same way — every event of job 1 strictly before every event of job 0
    let done = named(&frames, "job-done");
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].get("job"), Some("1"));
    assert_eq!(done[0].get("seed"), Some("12"));
    assert_eq!(done[1].get("job"), Some("0"));
    assert_eq!(done[1].get("seed"), Some("11"));
    for frame in done {
        assert!(frame.get("hpwl_dbu").is_some(), "evaluated jobs report metrics: {frame:?}");
        assert!(frame.get("wall_s").is_some());
    }
    let event_jobs: Vec<&str> = named(&frames, "event")
        .iter()
        .map(|f| f.get("job").expect("events are job-tagged"))
        .collect();
    assert!(!event_jobs.is_empty(), "stage events stream during the drain");
    let switch = event_jobs.iter().position(|&j| j == "0").expect("job 0 emitted events");
    assert!(event_jobs[..switch].iter().all(|&j| j == "1"), "priority order: {event_jobs:?}");
    assert!(event_jobs[switch..].iter().all(|&j| j == "0"), "no interleaving: {event_jobs:?}");

    // stats #1: both designs pinned and resident, artifacts populated
    let stats = named(&frames, "stats");
    assert_eq!(stats.len(), 3);
    assert_eq!(stats[0].get("queued"), Some("0"));
    assert_eq!(stats[0].get("interned"), Some("2"));
    assert_eq!(stats[0].get("resident"), Some("2"));
    assert_ne!(stats[0].get("budget"), Some("none"), "the tight budget is reported");
    let design_rows = named(&frames, "design");
    assert!(design_rows.iter().any(|f| f.get("design") == Some("0")
        && f.get("resident") == Some("true")
        && f.get("bytes").is_some_and(|b| b.parse::<usize>().unwrap() > 0)));

    // stats #2 (after both releases): the budget pressure evicted at least
    // the large design, and the eviction log says so by name
    assert_eq!(stats[1].get("interned"), Some("2"));
    let resident_after: usize = stats[1].get("resident").unwrap().parse().unwrap();
    assert!(resident_after < 2, "releasing under a tight budget evicts");
    let evicted = named(&frames, "evicted");
    assert!(!evicted.is_empty(), "the eviction log is on the wire");
    assert!(evicted.iter().all(|f| f.get("name").is_some() && f.get("bytes").is_some()));

    // the re-intern revived the small design under its original handle
    assert_eq!(interns[2].get("design"), Some("0"), "revival keeps the handle");
    assert_eq!(interns[2].get("resident"), Some("true"));
    let last_design_rows: Vec<&&Frame> =
        design_rows.iter().filter(|f| f.get("design") == Some("0")).collect();
    assert_eq!(
        last_design_rows.last().unwrap().get("resident"),
        Some("true"),
        "stats #3 sees the revived design"
    );
}

#[test]
fn warm_session_rebuilds_no_graphs_and_matches_cold_results() {
    let mut server = tight_server();
    let submit = "\
hello client=ci
intern design=small
submit design=0 flow=hidap effort=fast seeds=7 evaluate=standard
drain
";
    let (end, cold) = run_script(&mut server, submit);
    assert_eq!(end, SessionEnd::Eof, "EOF keeps the daemon alive for the next session");
    let cold_stats = server.scheduler().service().store().artifacts().stats();
    assert!(cold_stats.seq.misses > 0, "the cold pass built graphs");

    // same commands again on the warm server: a second session, same store
    let (_, warm) = run_script(&mut server, submit);
    let warm_stats = server.scheduler().service().store().artifacts().stats();
    assert_eq!(warm_stats.seq.misses, cold_stats.seq.misses, "zero warm seq-graph builds");
    assert_eq!(warm_stats.net.misses, cold_stats.net.misses, "zero warm net-graph builds");

    // bit-identical completion frames modulo timing fields
    let strip = |frames: &[Frame]| -> Vec<Vec<(String, String)>> {
        frames
            .iter()
            .filter(|f| f.name == "job-done")
            .map(|f| {
                f.fields.iter().filter(|(k, _)| k != "wall_s" && k != "job").cloned().collect()
            })
            .collect()
    };
    assert_eq!(strip(&cold), strip(&warm), "warm results are bit-identical");
}

#[test]
fn replace_session_chains_in_one_drain_and_keeps_artifacts_warm() {
    let mut server = tight_server();
    // author the edit script against the same preset the daemon will intern
    let design = preset("small").unwrap();
    let macro_id = design.macros().next().expect("preset has macros");
    let macro_name = design.cell(macro_id).name.clone();
    let script = format!(
        "\
hello client=ci
intern design=small
submit design=0 flow=hidap effort=fast seeds=7 evaluate=standard
replace design=0 base=0 edits=\"resize {macro_name} 220 160\" effort=fast evaluate=standard
drain
stats
shutdown
"
    );
    let (_, frames) = run_script(&mut server, &script);
    let errs = named(&frames, "err");
    assert!(errs.is_empty(), "a chained replace succeeds: {errs:?}");

    // the replace ack echoes the dependency and the parsed edit count
    let replace_ok: Vec<&Frame> =
        frames.iter().filter(|f| f.name == "ok" && f.get("cmd") == Some("replace")).collect();
    assert_eq!(replace_ok.len(), 1);
    assert_eq!(replace_ok[0].get("job"), Some("1"));
    assert_eq!(replace_ok[0].get("base"), Some("0"));
    assert_eq!(replace_ok[0].get("edits"), Some("1"));

    // base ran first (FIFO), then the replace with its edit log on the wire
    let done = named(&frames, "job-done");
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].get("job"), Some("0"));
    assert_eq!(done[1].get("job"), Some("1"));
    assert_eq!(done[1].get("edits_applied"), Some("1"));
    assert_eq!(done[1].get("pure_geometry"), Some("true"));
    assert!(done[1].get("hpwl_dbu").is_some(), "the replace evaluated");

    // a pure-geometry replace rebuilds neither derived graph: the chained
    // session does exactly as many graph builds as a cold-only one
    let mut baseline = tight_server();
    run_script(
        &mut baseline,
        "hello client=ci\nintern design=small\nsubmit design=0 flow=hidap effort=fast seeds=7 evaluate=standard\ndrain\nshutdown\n",
    );
    let cold = baseline.scheduler().service().store().artifacts().stats();
    let stats = server.scheduler().service().store().artifacts().stats();
    assert_eq!(stats.seq.misses, cold.seq.misses, "zero Gseq builds for the replace");
    assert_eq!(stats.net.misses, cold.net.misses, "zero Gnet builds for the replace");

    // the queue-depth watermark reports the two-deep backlog
    let stats_frames = named(&frames, "stats");
    assert_eq!(stats_frames[0].get("queued"), Some("0"));
    assert_eq!(stats_frames[0].get("peak_queued"), Some("2"));
}

#[test]
fn replace_errors_are_structured_on_the_wire() {
    let mut server = tight_server();
    let script = "\
hello client=ci
intern design=small
submit design=0 flow=hidap effort=fast seeds=3
drain
replace design=0 base=0
replace design=0 base=9
drain
replace design=7 base=0
replace design=0 base=0 edits=\"resize no/such/cell 10 10\"
shutdown
";
    let (_, frames) = run_script(&mut server, script);
    // drain #1 streamed (and thereby claimed) job 0's result, so a replace
    // in a later drain hits the structured taken-dependency error
    let errs = named(&frames, "err");
    let taken: Vec<&&Frame> = errs
        .iter()
        .filter(|f| f.get("reason").is_some_and(|r| r.contains("already taken")))
        .collect();
    assert_eq!(taken.len(), 1, "{errs:?}");
    assert_eq!(taken[0].get("code"), Some("invalid-request"));
    assert!(taken[0].get("reason").unwrap().contains("job 0"), "the dependency is named");
    // unknown base job: rejected when the replace runs
    assert!(errs.iter().any(|f| f.get("reason").is_some_and(|r| r.contains("job 9"))), "{errs:?}");
    // unknown design handle: rejected at submit time
    assert!(
        errs.iter().any(|f| f.get("cmd") == Some("replace")
            && f.get("design") == Some("7")
            && f.get("reason").is_some_and(|r| r.contains("never interned"))),
        "{errs:?}"
    );
    // a bad edit script is rejected at submit time with its own code
    assert!(
        errs.iter().any(|f| f.get("code") == Some("bad-edit-script")
            && f.get("reason").is_some_and(|r| r.contains("no/such/cell"))),
        "{errs:?}"
    );
}

#[test]
fn protocol_errors_keep_the_session_alive() {
    let mut server = tight_server();
    let script = "\
this is = not a frame
warp speed=9
submit design=0 flow=hidap
result job=99
cancel job=99
release design=99
shutdown
";
    let (end, frames) = run_script(&mut server, script);
    assert_eq!(end, SessionEnd::Shutdown, "the session survives every error");
    let errs = named(&frames, "err");
    assert_eq!(errs.len(), 6);
    assert_eq!(errs[0].get("code"), Some("parse"));
    assert_eq!(errs[0].get("line"), Some("1"), "parse errors carry line numbers");
    assert_eq!(errs[1].get("code"), Some("bad-command"));
    assert_eq!(errs[2].get("code"), Some("no-client"), "submit before hello is rejected");
    assert_eq!(errs[3].get("code"), Some("invalid-request"));
    assert!(errs[3].get("reason").unwrap().contains("job 99"), "the id is named");
    assert_eq!(errs[4].get("code"), Some("invalid-request"));
    assert_eq!(errs[5].get("code"), Some("invalid-request"));
}

#[test]
fn quota_rejections_reach_the_wire() {
    let budget = preset_bytes("small") * 4;
    let service = PlacementService::with_store(
        placer_core::builtin_registry(),
        DesignStore::with_memory_budget(budget),
    )
    .with_jobs(1);
    let mut server = Server::new(Scheduler::with_service(service).with_quota(1), preset_loader());
    let script = "\
hello client=greedy
intern design=small
submit design=0 flow=hidap effort=fast seeds=1
submit design=0 flow=hidap effort=fast seeds=2
shutdown
";
    let (_, frames) = run_script(&mut server, script);
    let errs = named(&frames, "err");
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].get("code"), Some("quota-exceeded"));
    assert_eq!(errs[0].get("quota"), Some("1"));
    assert!(errs[0].get("reason").unwrap().contains("greedy"), "the client is named");
}

#[test]
fn result_command_claims_and_then_rejects_reclaims() {
    let mut server = tight_server();
    let script = "\
hello client=ci
intern design=small
submit design=0 flow=hidap effort=fast seeds=3
result job=0
drain
result job=0
shutdown
";
    let (_, frames) = run_script(&mut server, script);
    // before the drain the job is queued: the result command reports that
    let pending: Vec<&Frame> =
        frames.iter().filter(|f| f.name == "err" && f.get("code") == Some("pending")).collect();
    assert_eq!(pending.len(), 1);
    // the drain already claimed and streamed the result, so an explicit
    // re-claim maps take_result's structured error onto the wire
    let taken: Vec<&Frame> = frames
        .iter()
        .filter(|f| f.name == "err" && f.get("code") == Some("invalid-request"))
        .collect();
    assert_eq!(taken.len(), 1);
    assert!(taken[0].get("reason").unwrap().contains("already taken"), "{:?}", taken[0]);
}

#[cfg(unix)]
#[test]
fn unix_socket_sessions_share_one_warm_store() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("hidap_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("hidap.sock");
    let path = socket.clone();
    let daemon = std::thread::spawn(move || {
        let mut server = tight_server();
        server.serve_unix(&path).expect("daemon io");
        server.scheduler().service().store().artifacts().stats()
    });

    let connect = |socket: &std::path::Path| {
        for _ in 0..200 {
            if let Ok(stream) = UnixStream::connect(socket) {
                return stream;
            }
            // lint:allow(test-env): bounded poll while the daemon socket appears;
            // load can only delay the connect, not change the outcome
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("daemon socket never came up");
    };
    let run = |socket: &std::path::Path, script: &str| -> Vec<String> {
        let mut stream = connect(socket);
        stream.write_all(script.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
    };

    let session = "hello client=ci\nintern design=small\nsubmit design=0 flow=hidap effort=fast seeds=5 evaluate=standard\ndrain\n";
    let first = run(&socket, session);
    assert!(first.iter().any(|l| l.starts_with("job-done")), "{first:?}");
    let second = run(&socket, session);
    assert!(second.iter().any(|l| l.starts_with("job-done")), "{second:?}");
    run(&socket, "shutdown\n");

    let stats = daemon.join().unwrap();
    assert!(stats.seq.hits > 0, "the second connection reused the first's artifacts");
    assert!(!socket.exists(), "the daemon removes its socket on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_script_cannot_take_the_session_down() {
    // regression companion to the daemon-panic lint rule: every malformed or
    // out-of-order command must come back as an err frame on the wire, and
    // the same session must still serve real work afterwards
    let mut server = tight_server();
    let script = "\
frobnicate x=1
intern design=\"oops
submit design=0 flow=hidap
cancel job=42
release design=7
hello client=chaos
submit design=99 flow=hidap effort=fast
submit design=0 flow=nosuchflow
intern design=small
submit design=0 flow=hidap effort=fast seeds=5
drain
shutdown
";
    let (end, frames) = run_script(&mut server, script);
    assert_eq!(end, SessionEnd::Shutdown, "the session reaches an orderly shutdown");

    let errs = named(&frames, "err");
    let codes: Vec<&str> = errs.iter().filter_map(|f| f.get("code")).collect();
    // unknown command, unterminated quote, submit-before-hello, unknown
    // job, unknown design handle
    for expected in ["bad-command", "parse", "no-client", "invalid-request"] {
        assert!(codes.contains(&expected), "missing err code {expected} in {codes:?}");
    }

    // the submits against a bogus handle and a bogus flow were queued, so
    // their failures surface at drain time as job failures, not crashes
    assert!(
        frames.iter().any(|f| f.name == "err" && f.get("code") == Some("unknown-flow")),
        "the bogus flow fails its job: {frames:?}"
    );

    // and the one real job still ran to completion in the same session
    let done = named(&frames, "job-done");
    assert_eq!(done.len(), 1, "exactly one job succeeds: {done:?}");
    assert_eq!(done[0].get("seed"), Some("5"));
}
