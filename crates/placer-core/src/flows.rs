//! Engine adapters for the flows this crate can see.
//!
//! [`HidapFlow`] gets its [`Placer`] implementation here (the trait lives in
//! this crate, so the impl must too); the baseline flows implement the trait
//! in the `baselines` crate, which depends on this one.

use crate::context::PlaceContext;
use crate::error::PlaceError;
use crate::observer::StageEvent;
use crate::registry::FlowRegistry;
use crate::request::{EffortLevel, PlaceOutcome, PlaceRequest, Placer, StageTiming};
use graphs::seqgraph::SeqGraphConfig;
use hidap::{FlowStage, HidapConfig, HidapFlow};
use std::time::Instant;

/// The HiDaP configuration a request implies, given a flow's base config.
pub fn hidap_config_for(base: &HidapConfig, req: &PlaceRequest<'_>) -> HidapConfig {
    let mut config = match req.effort {
        Some(EffortLevel::Fast) => HidapConfig::fast(),
        Some(EffortLevel::Default) => HidapConfig::default(),
        Some(EffortLevel::High) => HidapConfig::high_effort(),
        None => base.clone(),
    };
    config.seed = req.seed;
    if let Some(lambda) = req.lambda {
        config.lambda = lambda;
    }
    config
}

/// Translates HiDaP probe checkpoints into engine stage events, accumulating
/// per-stage wall-clock time (each checkpoint closes the interval opened by
/// the previous one).
struct StageTracker<'c> {
    ctx: &'c PlaceContext,
    macros: usize,
    last: Instant,
    timings: Vec<StageTiming>,
}

impl<'c> StageTracker<'c> {
    fn new(ctx: &'c PlaceContext, macros: usize) -> Self {
        // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
        Self { ctx, macros, last: Instant::now(), timings: Vec::new() }
    }

    fn record(&mut self, stage: &str) {
        // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
        let now = Instant::now();
        let seconds = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        match self.timings.iter_mut().find(|t| t.stage == stage) {
            Some(t) => t.seconds += seconds,
            None => self.timings.push(StageTiming { stage: stage.to_string(), seconds }),
        }
    }

    /// Handles one probe checkpoint; returns `false` to cancel the flow.
    fn on_stage(&mut self, stage: &FlowStage<'_>) -> bool {
        let event = match stage {
            FlowStage::HierarchyBuilt { nodes } => {
                self.record("hierarchy");
                StageEvent::HierarchyBuilt { nodes: *nodes, macros: self.macros }
            }
            FlowStage::ShapeCurvesReady { curves } => {
                self.record("shape_curves");
                StageEvent::ShapeCurvesReady { curves: *curves }
            }
            FlowStage::LevelFloorplanned { depth, node, blocks } => {
                self.record("floorplan");
                StageEvent::LevelFloorplanned {
                    depth: *depth,
                    node: (*node).to_string(),
                    blocks: *blocks,
                }
            }
            FlowStage::LegalizationDone { moved } => {
                self.record("legalize");
                StageEvent::LegalizationDone { moved: *moved }
            }
            FlowStage::FlippingDone { flipped } => {
                self.record("flipping");
                StageEvent::FlippingDone { flipped: *flipped }
            }
        };
        self.ctx.emit(event);
        self.ctx.interrupted().is_none()
    }
}

impl Placer for HidapFlow {
    fn name(&self) -> &str {
        "hidap"
    }

    fn place(
        &self,
        req: &PlaceRequest<'_>,
        ctx: &mut PlaceContext,
    ) -> Result<PlaceOutcome, PlaceError> {
        req.validate()?;
        if let Some(err) = ctx.interrupted() {
            return Err(err);
        }
        let config = hidap_config_for(self.config(), req);
        let lambda = config.lambda;
        let design = req.effective_design();
        ctx.emit(StageEvent::FlowStarted {
            flow: "hidap".into(),
            seed: req.seed,
            lambda: Some(lambda),
        });

        // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
        let start = Instant::now();
        let mut tracker = StageTracker::new(ctx, design.num_macros());
        let flow = HidapFlow::new(config);
        let min_register_bits = flow.config().min_register_bits;
        let placement = match req.warm_start {
            // the ECO warm path re-legalizes from the seed placement and
            // never floorplans, so it needs neither circuit graph
            Some(warm) => {
                flow.run_warm_probed(design.as_ref(), warm, &mut |stage| tracker.on_stage(stage))
            }
            None => {
                // both circuit graphs come from the context's design-keyed
                // artifact cache: one `Gnet` build and one `Gseq` build per
                // design (× register-width threshold for `Gseq`) across every
                // run of a sweep or a multi-design service. Keyed off the
                // *borrowed* request design (whose CSR view is cached), not
                // the die-override clone whose connectivity cache starts
                // empty — the graphs do not depend on the die, so the keys
                // and graphs are identical either way.
                let gnet = ctx.artifacts().get_or_build_net(req.design);
                let gseq = ctx
                    .artifacts()
                    .get_or_build_seq(req.design, &SeqGraphConfig { min_register_bits });
                flow.run_probed_with(design.as_ref(), Some(&gnet), Some(&gseq), &mut |stage| {
                    tracker.on_stage(stage)
                })
            }
        }
        .map_err(|e| match e {
            // the probe aborted on behalf of the context: surface why
            hidap::HidapError::Cancelled => ctx.interrupted().unwrap_or(PlaceError::Cancelled),
            other => PlaceError::from(other),
        })?;
        let mut timings = tracker.timings;
        let wall_s = start.elapsed().as_secs_f64();

        let metrics = req.evaluate.as_ref().map(|eval_cfg| {
            // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
            let t = Instant::now();
            // the context's evaluator shares the Gseq cache across a sweep,
            // and the flow output is read directly as a PlacementView
            let metrics = match req.warm_cells {
                Some(cells) => {
                    ctx.evaluator(*eval_cfg).evaluate_warm(design.as_ref(), &placement, cells).0
                }
                None => ctx.evaluator(*eval_cfg).evaluate(design.as_ref(), &placement),
            };
            timings
                .push(StageTiming { stage: "evaluate".into(), seconds: t.elapsed().as_secs_f64() });
            metrics
        });

        ctx.emit(StageEvent::FlowFinished { wall_s, legal: placement.is_legal(design.as_ref()) });
        Ok(PlaceOutcome {
            placement,
            flow: "hidap".into(),
            seed: req.seed,
            lambda: Some(lambda),
            stage_timings: timings,
            wall_s,
            metrics,
        })
    }
}

/// A registry with the flows this crate can construct (just `hidap`; the
/// `baselines` crate layers `indeda` and `handfp` on top via
/// `baselines::default_registry`).
pub fn builtin_registry() -> FlowRegistry {
    let mut registry = FlowRegistry::new();
    registry.register("hidap", || Box::new(HidapFlow::new(HidapConfig::default())));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CollectingObserver;
    use geometry::Rect;
    use netlist::design::DesignBuilder;
    use std::sync::Arc;
    use std::time::Duration;

    fn pipeline_design() -> netlist::design::Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..8 {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn hidap_flow_places_through_the_trait() {
        let design = pipeline_design();
        let placer = HidapFlow::new(HidapConfig::fast());
        let req = PlaceRequest::new(&design).with_seed(3).with_lambda(0.2);
        let outcome = placer.place(&req, &mut PlaceContext::new()).unwrap();
        assert_eq!(outcome.placement.macros.len(), 2);
        assert_eq!(outcome.flow, "hidap");
        assert_eq!(outcome.seed, 3);
        assert_eq!(outcome.lambda, Some(0.2));
        assert!(outcome.stage_seconds("floorplan").is_some());
        assert!(outcome.wall_s > 0.0);
        assert!(outcome.metrics.is_none());
    }

    #[test]
    fn trait_run_matches_direct_run() {
        let design = pipeline_design();
        let config = HidapConfig::fast().with_seed(5).with_lambda(0.8);
        let direct = HidapFlow::new(config.clone()).run(&design).unwrap();
        let via_trait = HidapFlow::new(config)
            .place(
                &PlaceRequest::new(&design).with_seed(5).with_lambda(0.8),
                &mut PlaceContext::new(),
            )
            .unwrap();
        assert_eq!(direct, via_trait.placement);
    }

    #[test]
    fn observer_receives_lifecycle_events() {
        let design = pipeline_design();
        let obs = Arc::new(CollectingObserver::new());
        let mut ctx = PlaceContext::new().with_observer(obs.clone());
        HidapFlow::new(HidapConfig::fast()).place(&PlaceRequest::new(&design), &mut ctx).unwrap();
        let events = obs.events();
        assert!(matches!(events.first(), Some(StageEvent::FlowStarted { .. })));
        assert!(
            events.iter().any(|e| matches!(e, StageEvent::HierarchyBuilt { macros: 2, .. })),
            "HierarchyBuilt must carry the design's macro count: {events:?}"
        );
        assert!(matches!(events.last(), Some(StageEvent::FlowFinished { legal: true, .. })));
        assert!(obs.count(|e| matches!(e, StageEvent::LevelFloorplanned { .. })) >= 1);
        assert_eq!(obs.count(|e| matches!(e, StageEvent::FlippingDone { .. })), 1);
        assert_eq!(obs.count(|e| matches!(e, StageEvent::LegalizationDone { .. })), 1);
    }

    #[test]
    fn cancellation_aborts_the_flow() {
        let design = pipeline_design();
        let mut ctx = PlaceContext::new();
        ctx.cancel_token().cancel();
        let err = HidapFlow::new(HidapConfig::fast())
            .place(&PlaceRequest::new(&design), &mut ctx)
            .unwrap_err();
        assert_eq!(err, PlaceError::Cancelled);
    }

    #[test]
    fn zero_deadline_is_reported_as_deadline() {
        let design = pipeline_design();
        let mut ctx = PlaceContext::new().with_deadline(Duration::from_secs(0));
        // lint:allow(test-env): a zero deadline is already expired; the sleep only
        // guarantees clock monotonicity has ticked, and more load makes it *more* expired
        std::thread::sleep(Duration::from_millis(2));
        let err = HidapFlow::new(HidapConfig::fast())
            .place(&PlaceRequest::new(&design), &mut ctx)
            .unwrap_err();
        assert_eq!(err, PlaceError::DeadlineExceeded);
    }

    #[test]
    fn evaluation_attaches_metrics() {
        let design = pipeline_design();
        let req = PlaceRequest::new(&design).with_evaluation(eval::EvalConfig::standard());
        let outcome =
            HidapFlow::new(HidapConfig::fast()).place(&req, &mut PlaceContext::new()).unwrap();
        assert!(outcome.stage_seconds("evaluate").is_some());
        assert!(outcome.metrics.expect("metrics requested").wirelength_m > 0.0);
    }

    #[test]
    fn warm_start_skips_global_stages_and_stays_legal() {
        let design = pipeline_design();
        let placer = HidapFlow::new(HidapConfig::fast());
        let mut ctx = PlaceContext::new();
        let cold = placer
            .place(
                &PlaceRequest::new(&design).with_evaluation(eval::EvalConfig::standard()),
                &mut ctx,
            )
            .unwrap();
        let cold_metrics = cold.metrics.as_ref().expect("metrics requested");

        let warm_req = PlaceRequest::new(&design)
            .with_evaluation(eval::EvalConfig::standard())
            .with_warm_start(&cold.placement)
            .with_warm_cells(&cold_metrics.cell_placement);
        let warm = placer.place(&warm_req, &mut ctx).unwrap();
        assert!(warm.placement.is_legal(&design));
        // warm-starting from the cold result keeps every macro location
        assert_eq!(warm.placement.macros, cold.placement.macros);
        // the global stages never ran on the warm path
        assert!(warm.stage_seconds("hierarchy").is_none());
        assert!(warm.stage_seconds("shape_curves").is_none());
        assert!(warm.stage_seconds("floorplan").is_none());
        assert!(warm.stage_seconds("legalize").is_some());
        assert!(warm.stage_seconds("evaluate").is_some());
        // and the warm path is deterministic
        let again = placer.place(&warm_req, &mut PlaceContext::new()).unwrap();
        assert_eq!(again.placement, warm.placement);
        assert_eq!(again.metrics.unwrap(), *warm.metrics.as_ref().unwrap());
    }

    #[test]
    fn builtin_registry_resolves_hidap() {
        let registry = builtin_registry();
        assert_eq!(registry.names(), vec!["hidap".to_string()]);
        let placer = registry.create("hidap").unwrap();
        assert_eq!(placer.name(), "hidap");
        assert!(matches!(registry.create("nope"), Err(PlaceError::UnknownFlow { .. })));
    }
}
