//! The string-keyed flow registry.

use crate::error::PlaceError;
use crate::request::Placer;
use std::collections::BTreeMap;

/// Builds a boxed flow on demand.
pub type FlowFactory = Box<dyn Fn() -> Box<dyn Placer> + Send + Sync>;

/// Maps flow names (`hidap`, `indeda`, `handfp`, ...) to factories so front
/// ends can resolve `--flow <name>` without hard-coding flow types.
///
/// Names are stored sorted, so error messages and [`FlowRegistry::names`] are
/// deterministic.
#[derive(Default)]
pub struct FlowRegistry {
    factories: BTreeMap<String, FlowFactory>,
}

impl FlowRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a flow under `name`.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> Box<dyn Placer> + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Box::new(factory));
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Builds the flow registered under `name`.
    ///
    /// # Errors
    ///
    /// [`PlaceError::UnknownFlow`] (listing the known names) when `name` is
    /// not registered.
    pub fn create(&self, name: &str) -> Result<Box<dyn Placer>, PlaceError> {
        match self.factories.get(name) {
            Some(factory) => Ok(factory()),
            None => {
                Err(PlaceError::UnknownFlow { requested: name.to_string(), known: self.names() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PlaceContext;
    use crate::request::{PlaceOutcome, PlaceRequest};

    struct Dummy(&'static str);
    impl Placer for Dummy {
        fn name(&self) -> &str {
            self.0
        }
        fn place(
            &self,
            _req: &PlaceRequest<'_>,
            _ctx: &mut PlaceContext,
        ) -> Result<PlaceOutcome, PlaceError> {
            Err(PlaceError::InvalidRequest("dummy".into()))
        }
    }

    #[test]
    fn register_lookup_and_names_are_sorted() {
        let mut reg = FlowRegistry::new();
        reg.register("zeta", || Box::new(Dummy("zeta")));
        reg.register("alpha", || Box::new(Dummy("alpha")));
        assert_eq!(reg.names(), vec!["alpha".to_string(), "zeta".to_string()]);
        assert!(reg.contains("alpha"));
        assert_eq!(reg.create("zeta").unwrap().name(), "zeta");
    }

    #[test]
    fn unknown_flow_lists_known_names() {
        let mut reg = FlowRegistry::new();
        reg.register("hidap", || Box::new(Dummy("hidap")));
        match reg.create("magic") {
            Err(PlaceError::UnknownFlow { requested, known }) => {
                assert_eq!(requested, "magic");
                assert_eq!(known, vec!["hidap".to_string()]);
            }
            other => panic!("unexpected {:?}", other.map(|p| p.name().to_string())),
        }
    }
}
