//! Per-run context: observer wiring, cancellation, deadlines and the shared
//! evaluation session.

use crate::error::PlaceError;
use crate::observer::{FlowObserver, StageEvent};
use eval::{ArtifactCache, EvalConfig, Evaluator};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag; clone it, hand it to another thread, and
/// call [`CancelToken::cancel`] to stop an in-flight run at its next stage
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Execution context threaded through every [`crate::Placer::place`] call.
///
/// Carries the observer, the cancellation token and an optional deadline.
/// Flows poll [`PlaceContext::interrupted`] at stage boundaries and abort
/// with [`PlaceError::Cancelled`] / [`PlaceError::DeadlineExceeded`].
#[derive(Default)]
pub struct PlaceContext {
    observer: Option<Arc<dyn FlowObserver>>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// Artifact cache (`Gnet`, `Gseq`) shared by every flow run and
    /// evaluation of this context and its children, so a seed×λ sweep builds
    /// each derived graph once, not per run. Contexts created by a
    /// [`crate::DesignStore`] borrow the store's byte-budgeted cache instead
    /// of owning a private one, so artifacts survive across jobs.
    artifacts: ArtifactCache,
}

impl PlaceContext {
    /// A context with no observer, no deadline and a fresh cancel token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observer receiving this run's stage events.
    pub fn with_observer(mut self, observer: Arc<dyn FlowObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets a deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        // lint:allow(wall-clock): opt-in wall-time budget requested by the caller;
        // deterministic flows never set a deadline
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Uses an existing cancel token (e.g. shared with a controlling thread).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Borrows an existing artifact cache instead of the context's private
    /// one. This is how multi-design front ends share per-design artifacts
    /// across jobs: every context handed out by a [`crate::DesignStore`]
    /// points at the store's byte-budgeted cache.
    pub fn with_artifacts(mut self, cache: ArtifactCache) -> Self {
        self.artifacts = cache;
        self
    }

    /// The artifact cache (`Gnet`, `Gseq`) flow runs and evaluations of this
    /// context share.
    pub fn artifacts(&self) -> &ArtifactCache {
        &self.artifacts
    }

    /// The run's cancel token; clone it to cancel from elsewhere.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Emits an event to the attached observer, if any.
    pub fn emit(&self, event: StageEvent) {
        if let Some(obs) = &self.observer {
            obs.on_event(&event);
        }
    }

    /// Checks cancellation and deadline; `Some(error)` means the flow must
    /// abort now.
    pub fn interrupted(&self) -> Option<PlaceError> {
        if self.cancel.is_cancelled() {
            return Some(PlaceError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            // lint:allow(wall-clock): checks the caller's opt-in deadline (see with_deadline)
            if Instant::now() >= deadline {
                return Some(PlaceError::DeadlineExceeded);
            }
        }
        None
    }

    /// An evaluation session with the given configuration, sharing this
    /// context's artifact cache: every flow evaluating through the same
    /// context (or a [`PlaceContext::child`]) reuses one `Gseq` per design
    /// instead of rebuilding it per candidate.
    pub fn evaluator(&self, config: EvalConfig) -> Evaluator {
        Evaluator::with_cache(config, self.artifacts.clone())
    }

    /// A child context for one run of a batch: shares the observer, cancel
    /// token, deadline and artifact cache of the parent.
    pub fn child(&self) -> PlaceContext {
        PlaceContext {
            observer: self.observer.clone(),
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            artifacts: self.artifacts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_is_not_interrupted() {
        assert!(PlaceContext::new().interrupted().is_none());
    }

    #[test]
    fn cancel_token_interrupts() {
        let ctx = PlaceContext::new();
        let token = ctx.cancel_token();
        assert!(ctx.interrupted().is_none());
        token.cancel();
        assert_eq!(ctx.interrupted(), Some(PlaceError::Cancelled));
    }

    #[test]
    fn expired_deadline_interrupts() {
        let ctx = PlaceContext::new().with_deadline(Duration::from_secs(0));
        // lint:allow(test-env): a zero deadline is already expired; the sleep only
        // guarantees clock monotonicity has ticked, and more load makes it *more* expired
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(ctx.interrupted(), Some(PlaceError::DeadlineExceeded));
    }

    #[test]
    fn children_share_cancellation() {
        let ctx = PlaceContext::new();
        let child = ctx.child();
        ctx.cancel_token().cancel();
        assert_eq!(child.interrupted(), Some(PlaceError::Cancelled));
    }
}
