//! The multi-design placement service: a job queue over one engine.
//!
//! [`PlacementService`] is the batch front end the single-design stack grew
//! into: callers intern any number of designs into the service's
//! [`DesignStore`], submit heterogeneous [`PlaceJob`]s (different designs ×
//! flows × seed/λ grids), and drain the queue with
//! [`PlacementService::run_all`]. Results are claimed per job through
//! [`PlacementService::take_result`].
//!
//! Guarantees:
//!
//! * **deterministic winners** — a job's result depends only on its own
//!   spec (design, flow, grid, effort, evaluation); queue position and
//!   interleaving with other jobs never change it. Shared caches make warm
//!   jobs *faster*, bit-identical, never different.
//! * **artifact reuse** — every job runs in a context borrowing the store's
//!   caches: the CSR connectivity is built once per design at intern time,
//!   and the derived graphs (`Gnet`, `Gseq`) come from the store's
//!   byte-budgeted [`crate::DesignStore`] artifact cache, so repeated
//!   traffic against the same designs skips both the flow's graph
//!   constructions and the dominant evaluation setup cost.
//! * **per-job observability and cancellation** — each job may carry its own
//!   [`FlowObserver`]; the service-wide [`CancelToken`] aborts the drain at
//!   the next stage boundary, and jobs still queued report
//!   [`PlaceError::Cancelled`].
//!
//! # Example
//!
//! ```
//! use netlist::design::DesignBuilder;
//! use placer_core::{PlaceJob, PlacementService};
//!
//! let mut b = DesignBuilder::new("mini");
//! let ram0 = b.add_macro("u_a/ram0", "RAM", 200, 150, "u_a");
//! let ram1 = b.add_macro("u_b/ram1", "RAM", 200, 150, "u_b");
//! for i in 0..8 {
//!     let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
//!     let n0 = b.add_net(format!("n0_{i}"));
//!     let n1 = b.add_net(format!("n1_{i}"));
//!     b.connect_driver(n0, ram0);
//!     b.connect_sink(n0, f);
//!     b.connect_driver(n1, f);
//!     b.connect_sink(n1, ram1);
//! }
//! b.set_die(geometry::Rect::new(0, 0, 1000, 800));
//!
//! let mut service = PlacementService::new(placer_core::builtin_registry());
//! let design = service.intern(b.build());
//! let job = service.submit(PlaceJob::new(design, "hidap").with_seeds(vec![1, 2]));
//! service.run_all();
//! let result = service.take_result(job).expect("job ran").expect("job succeeded");
//! assert_eq!(result.outcome.placement.macros.len(), 2);
//! assert_eq!(result.runs.len(), 2);
//! ```

use crate::batch::{BatchGrid, BatchRunner, RunSummary};
use crate::context::CancelToken;
use crate::error::PlaceError;
use crate::observer::FlowObserver;
use crate::registry::FlowRegistry;
use crate::request::{EffortLevel, PlaceOutcome, PlaceRequest};
use crate::seeds::{decode_seed, encode_seed, seed_fingerprint, seed_stem, WarmSeed};
use crate::store::{DesignHandle, DesignStore};
use eval::EvalConfig;
use geometry::Rect;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifier of a submitted job, unique within its service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Makes a [`PlaceJob`] an incremental **replace** job: re-place the design
/// after applying an ECO edit script, warm-started from a prior job's result
/// (see `docs/ECO.md`).
///
/// The edits are applied to the interned design through
/// [`DesignStore::apply_edits`], so the store's fingerprint diff decides
/// which cached artifacts survive (pure-geometry edits keep `Gnet`/`Gseq`
/// warm). The base job's placement seeds the flow's warm path and — when the
/// base ran with evaluation — its standard-cell placement seeds the warm
/// evaluation solver.
#[derive(Debug, Clone)]
pub struct ReplaceSpec {
    /// The prior job whose result seeds the warm start. Its result must
    /// still be held by the service when the replace job runs (results are
    /// take-once; taking the base first fails the replace with a structured
    /// [`PlaceError::InvalidRequest`] naming the dependency).
    pub base: JobId,
    /// The ECO edit script to apply to the interned design before
    /// re-placing. May be empty (re-legalize only).
    pub edits: Vec<netlist::DesignEdit>,
}

/// One unit of work for the service: which design to place, through which
/// flow, over which seed/λ grid, and how to evaluate the result.
#[derive(Clone)]
pub struct PlaceJob {
    /// The design to place (a handle into the service's store).
    pub design: DesignHandle,
    /// Flow name, resolved through the service's registry.
    pub flow: String,
    /// Seeds to try (default `[1]`). More than one grid cell runs the job
    /// through [`BatchRunner`] with a deterministic winner.
    pub seeds: Vec<u64>,
    /// λ values to try; empty (the default) keeps the flow's configured λ on
    /// a single run and uses λ = 0.5 as the sweep axis of a multi-seed grid.
    pub lambdas: Vec<f64>,
    /// Effort tier; `None` keeps the flow's configured effort.
    pub effort: Option<EffortLevel>,
    /// When set, outcomes carry metrics evaluated with this configuration
    /// (through the store's shared artifact caches).
    pub evaluate: Option<EvalConfig>,
    /// Overrides the design's die rectangle when set.
    pub die: Option<Rect>,
    /// Per-job observer receiving this job's stage events.
    pub observer: Option<Arc<dyn FlowObserver>>,
    /// Scheduling priority: higher-priority jobs drain first. Jobs of equal
    /// priority keep submission (FIFO) order, so a drain's execution order —
    /// and therefore its event order — is a deterministic function of the
    /// submitted jobs alone. Priority never changes a job's *result*, only
    /// when it runs.
    pub priority: i32,
    /// When set, this is an incremental replace job: the edits are applied
    /// to the interned design and the flow warm-starts from the base job's
    /// result. See [`ReplaceSpec`].
    pub replace: Option<ReplaceSpec>,
}

impl PlaceJob {
    /// A single-run job for `design` through flow `flow` with seed 1 and
    /// every knob left at the flow's default.
    pub fn new(design: DesignHandle, flow: impl Into<String>) -> Self {
        Self {
            design,
            flow: flow.into(),
            seeds: vec![1],
            lambdas: Vec::new(),
            effort: None,
            evaluate: None,
            die: None,
            observer: None,
            priority: 0,
            replace: None,
        }
    }

    /// Sets the seeds to sweep.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the λ values to sweep.
    pub fn with_lambdas(mut self, lambdas: Vec<f64>) -> Self {
        self.lambdas = lambdas;
        self
    }

    /// Sets the effort tier.
    pub fn with_effort(mut self, effort: EffortLevel) -> Self {
        self.effort = Some(effort);
        self
    }

    /// Requests metrics evaluation of every run.
    pub fn with_evaluation(mut self, eval: EvalConfig) -> Self {
        self.evaluate = Some(eval);
        self
    }

    /// Overrides the die rectangle.
    pub fn with_die(mut self, die: Rect) -> Self {
        self.die = Some(die);
        self
    }

    /// Attaches a per-job observer.
    pub fn with_observer(mut self, observer: Arc<dyn FlowObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Sets the scheduling priority (default 0; higher drains first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Makes this an incremental replace job: apply `edits` to the interned
    /// design, then re-place warm-started from `base`'s result (which must
    /// still be held — not taken — when this job runs).
    pub fn with_replace(mut self, base: JobId, edits: Vec<netlist::DesignEdit>) -> Self {
        self.replace = Some(ReplaceSpec { base, edits });
        self
    }

    /// Number of grid cells the job will run (seeds × λ, with a λ-less
    /// single axis when no λ values are given).
    pub fn num_runs(&self) -> usize {
        self.seeds.len() * self.lambdas.len().max(1)
    }
}

/// Where a submitted job currently is in its lifecycle (see
/// [`PlacementService::job_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Still queued: `position` is its rank in the drain order (0 runs
    /// next), which accounts for priorities, not just submission order.
    Queued {
        /// Rank in the priority-resolved drain order.
        position: usize,
        /// The job's scheduling priority.
        priority: i32,
    },
    /// Ran (successfully or not); its result has not been taken yet.
    Finished {
        /// Whether the job produced a [`JobResult`] (vs a [`PlaceError`]).
        ok: bool,
    },
    /// Ran and its result was already claimed through
    /// [`PlacementService::take_result`].
    Taken,
    /// The id was never issued by this service.
    Unknown,
}

/// A point-in-time snapshot of a service: queue/result counters plus the
/// store's memory accounting — the one source of truth front ends (the CLI
/// manifest summary, the daemon's `stats` command) report from instead of
/// re-deriving counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// High-water mark of the queue depth over the service's lifetime: the
    /// deepest backlog any submit has created, independent of how often the
    /// queue has since drained.
    pub peak_queued: usize,
    /// Finished jobs whose results have not been taken yet.
    pub completed: usize,
    /// Distinct design identities interned (resident or evicted).
    pub interned_designs: usize,
    /// Identities whose design is currently resident.
    pub resident_designs: usize,
    /// Resident bytes of the interned designs (CSR views included).
    pub design_bytes: usize,
    /// Resident bytes of the cached artifacts.
    pub artifact_bytes: usize,
    /// Total resident bytes (designs + artifacts).
    pub resident_bytes: usize,
    /// High-water mark of `resident_bytes` over the store's lifetime. Under
    /// a memory budget the current residency only shows the post-eviction
    /// tail; this is what the run actually needed.
    pub peak_resident_bytes: usize,
    /// The store's configured total-byte budget, if any.
    pub memory_budget: Option<usize>,
    /// Designs evicted so far.
    pub design_evictions: u64,
    /// Per-kind artifact hit/miss/evict/spill/revive counters and byte
    /// accounting.
    pub artifacts: eval::ArtifactCacheStats,
    /// CSR connectivity views spilled to disk on design eviction.
    pub csr_spills: u64,
    /// CSR connectivity views revived from disk at intern time (each skips
    /// a full connectivity reconstruction).
    pub csr_revives: u64,
    /// Warm-start seeds persisted to the spill directory after successful
    /// jobs (see [`crate::seeds`]).
    pub seed_spills: u64,
    /// Warm-start seeds revived from the spill directory to serve replace
    /// jobs whose base result predates this service (daemon restarts).
    pub seed_revives: u64,
}

/// The result of one completed job: the winning outcome plus per-run
/// summaries (a single entry for single-run jobs).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job this result belongs to.
    pub job: JobId,
    /// The design the job placed.
    pub design: DesignHandle,
    /// The winning run's outcome (the only run, for single-run jobs).
    pub outcome: PlaceOutcome,
    /// Grid index of the winner within [`JobResult::runs`].
    pub winner_index: usize,
    /// One summary per grid cell, in grid order.
    pub runs: Vec<RunSummary>,
    /// For replace jobs with a non-empty edit script: what the edits touched
    /// and the fingerprint diff that drove selective artifact invalidation.
    pub edit_log: Option<netlist::EditLog>,
}

/// A queue of heterogeneous placement jobs drained through one engine with
/// shared per-design artifacts. See the [module docs](crate::service).
pub struct PlacementService {
    store: DesignStore,
    registry: FlowRegistry,
    queue: VecDeque<(JobId, PlaceJob)>,
    results: HashMap<JobId, Result<JobResult, PlaceError>>,
    next_job: u64,
    cancel: CancelToken,
    jobs: usize,
    peak_queued: usize,
    seed_spills: u64,
    seed_revives: u64,
}

impl PlacementService {
    /// A service resolving flows through `registry`, with a fresh store.
    pub fn new(registry: FlowRegistry) -> Self {
        Self::with_store(registry, DesignStore::new())
    }

    /// A service over an existing store (e.g. one with a custom sequential-
    /// graph LRU capacity, or pre-interned designs).
    pub fn with_store(registry: FlowRegistry, store: DesignStore) -> Self {
        Self {
            store,
            registry,
            queue: VecDeque::new(),
            results: HashMap::new(),
            next_job: 0,
            cancel: CancelToken::new(),
            jobs: 0,
            peak_queued: 0,
            seed_spills: 0,
            seed_revives: 0,
        }
    }

    /// Sets the worker-thread count used per multi-run job (0 = all cores).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Attaches a disk spill tier rooted at `dir` (see
    /// [`DesignStore::with_spill_dir`]). On top of the store's artifact and
    /// CSR spilling, the *service* persists every successful job's winning
    /// placement as a warm-start seed file and revives it to serve replace
    /// jobs whose base result is gone — so `replace` survives a daemon
    /// restart pointed at the same directory (see [`crate::seeds`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store = self.store.with_spill_dir(dir);
        self
    }

    /// Interns a design into the service's store, adding one reference to it
    /// (see [`DesignStore::intern`]).
    pub fn intern(&mut self, design: netlist::design::Design) -> DesignHandle {
        self.store.intern(design)
    }

    /// Drops one reference to an interned design (see
    /// [`DesignStore::release`]): at zero references the design becomes
    /// eligible for budget-driven eviction. Returns the remaining count.
    pub fn release(&mut self, handle: DesignHandle) -> usize {
        self.store.release(handle)
    }

    /// The design store (designs, identity keys, shared artifact caches).
    pub fn store(&self) -> &DesignStore {
        &self.store
    }

    /// Mutable access to the design store.
    pub fn store_mut(&mut self) -> &mut DesignStore {
        &mut self.store
    }

    /// The service-wide cancel token: cancelling it aborts the current drain
    /// at the next stage boundary and fails all still-queued jobs with
    /// [`PlaceError::Cancelled`]. The cancellation consumes itself: once the
    /// drain has finished, the service arms a fresh token, so jobs submitted
    /// afterwards run normally (re-request the token before cancelling
    /// again — old clones are inert).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Enqueues a job and returns its id. Jobs drain in priority order
    /// (higher [`PlaceJob::priority`] first, submission order within equal
    /// priority) on the next [`PlacementService::run_all`]; their results
    /// are independent of that order.
    pub fn submit(&mut self, job: PlaceJob) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.queue.push_back((id, job));
        self.peak_queued = self.peak_queued.max(self.queue.len());
        id
    }

    /// High-water mark of the queue depth over the service's lifetime.
    pub fn peak_queued(&self) -> usize {
        self.peak_queued
    }

    /// Number of jobs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of jobs waiting in the queue (alias of
    /// [`PlacementService::pending`] matching the daemon's vocabulary).
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of finished jobs whose results have not been taken yet.
    pub fn completed(&self) -> usize {
        self.results.len()
    }

    /// The id the next [`PlacementService::submit`] will be issued — also
    /// the exclusive upper bound on every id issued so far, so front ends
    /// can enumerate `0..next_job_id()` to scan job states.
    pub fn next_job_id(&self) -> u64 {
        self.next_job
    }

    /// Where a job currently is: queued (with its drain-order position),
    /// finished, taken, or never issued. Unlike
    /// [`PlacementService::take_result`] this never consumes anything, so
    /// front ends can poll it freely.
    pub fn job_state(&self, id: JobId) -> JobState {
        let order = self.drain_order();
        if let Some((position, &(_, priority))) =
            order.iter().enumerate().find(|(_, &(qid, _))| qid == id)
        {
            return JobState::Queued { position, priority };
        }
        if let Some(result) = self.results.get(&id) {
            return JobState::Finished { ok: result.is_ok() };
        }
        if id.0 < self.next_job {
            JobState::Taken
        } else {
            JobState::Unknown
        }
    }

    /// A point-in-time snapshot of the service: queue/result counters plus
    /// the store's full memory accounting.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queued: self.queue.len(),
            peak_queued: self.peak_queued,
            completed: self.results.len(),
            interned_designs: self.store.len(),
            resident_designs: self.store.resident_designs(),
            design_bytes: self.store.design_bytes(),
            artifact_bytes: self.store.artifacts().resident_bytes(),
            resident_bytes: self.store.resident_bytes(),
            peak_resident_bytes: self.store.peak_resident_bytes(),
            memory_budget: self.store.memory_budget(),
            design_evictions: self.store.design_evictions(),
            artifacts: self.store.artifacts().stats(),
            csr_spills: self.store.csr_spills(),
            csr_revives: self.store.csr_revives(),
            seed_spills: self.seed_spills,
            seed_revives: self.seed_revives,
        }
    }

    /// The queue in the order the next [`PlacementService::run_all`] will
    /// execute it: stable-sorted by descending priority, so equal-priority
    /// jobs keep submission order.
    fn drain_order(&self) -> Vec<(JobId, i32)> {
        let mut order: Vec<(JobId, i32)> =
            self.queue.iter().map(|(id, j)| (*id, j.priority)).collect();
        order.sort_by_key(|&(_, priority)| std::cmp::Reverse(priority));
        order
    }

    /// Removes a still-queued job before it runs. The job reports
    /// [`PlaceError::Cancelled`] through [`PlacementService::take_result`].
    /// Returns `false` when the id is not in the queue (already ran, taken,
    /// or never issued) — in that case nothing changes.
    pub fn cancel_queued(&mut self, id: JobId) -> bool {
        let Some(pos) = self.queue.iter().position(|(qid, _)| *qid == id) else {
            return false;
        };
        self.queue.remove(pos);
        self.results.insert(id, Err(PlaceError::Cancelled));
        true
    }

    /// Drains the queue: runs every submitted job — higher-priority jobs
    /// first, submission order within equal priority — and stores each
    /// result. Returns the number of jobs that ran (successfully or not).
    /// The drain order is a deterministic function of the queued jobs alone
    /// and never changes any job's result, only when it runs.
    ///
    /// A cancellation only affects this drain: cancelled jobs report
    /// [`PlaceError::Cancelled`], and the service re-arms a fresh token at
    /// the end so later submissions run normally.
    pub fn run_all(&mut self) -> usize {
        let mut batch: Vec<(JobId, PlaceJob)> = self.queue.drain(..).collect();
        batch.sort_by_key(|(_, job)| std::cmp::Reverse(job.priority));
        let ids: Vec<JobId> = batch.iter().map(|(id, _)| *id).collect();
        let mut ran = 0;
        for (i, (id, job)) in batch.iter().enumerate() {
            let result = if self.cancel.is_cancelled() {
                Err(PlaceError::Cancelled)
            } else {
                self.run_job(*id, job, ids.get(i + 1..).unwrap_or(&[]))
            };
            self.results.insert(*id, result);
            ran += 1;
        }
        if self.cancel.is_cancelled() {
            self.cancel = CancelToken::new();
        }
        // Artifact caches grow behind shared handles during the drain; fold
        // the post-drain residency into the store's high-water mark.
        self.store.note_peak();
        ran
    }

    /// Removes and returns a job's result.
    ///
    /// * `None` — the job is still queued (it has no result yet).
    /// * `Some(Ok(_))` / `Some(Err(_))` — the job ran; the result is yours
    ///   now (results are take-once).
    /// * `Some(Err(PlaceError::InvalidRequest(_)))` naming the id — the id
    ///   was never issued by this service, or its result was already taken.
    pub fn take_result(&mut self, id: JobId) -> Option<Result<JobResult, PlaceError>> {
        if let Some(result) = self.results.remove(&id) {
            return Some(result);
        }
        if self.queue.iter().any(|(qid, _)| *qid == id) {
            return None;
        }
        if id.0 >= self.next_job {
            return Some(Err(PlaceError::InvalidRequest(format!(
                "job {} was never submitted to this service",
                id.0
            ))));
        }
        Some(Err(PlaceError::InvalidRequest(format!(
            "job {}'s result was already taken (results are take-once)",
            id.0
        ))))
    }

    /// Resolves a replace job's warm-start seed: the base job's outcome,
    /// cloned out of the held results. Every failure is a structured
    /// [`PlaceError::InvalidRequest`] naming the dependency — in particular
    /// a base whose result was already taken (results are take-once).
    /// `later` lists the jobs scheduled after this one in the current drain,
    /// so a mis-ordered dependency is reported as such.
    ///
    /// With a spill directory attached, a base that is *gone* — a [`JobId`]
    /// issued by a previous incarnation of the daemon, or one whose result
    /// was already taken — falls back to the design's persisted warm-start
    /// seed file before erroring, so `replace` survives a restart pointed at
    /// the same directory.
    fn resolve_replace_base(
        &mut self,
        id: JobId,
        design: DesignHandle,
        spec: &ReplaceSpec,
        later: &[JobId],
    ) -> Result<WarmSeed, PlaceError> {
        match self.results.get(&spec.base) {
            Some(Ok(base)) => Ok(WarmSeed {
                placement: base.outcome.placement.clone(),
                cells: base.outcome.metrics.as_ref().map(|m| m.cell_placement.clone()),
            }),
            Some(Err(e)) => Err(PlaceError::InvalidRequest(format!(
                "replace job {} depends on job {} which failed: {e}",
                id.0, spec.base.0
            ))),
            None if spec.base == id => Err(PlaceError::InvalidRequest(format!(
                "replace job {} names itself as its base placement",
                id.0
            ))),
            None if later.contains(&spec.base) => Err(PlaceError::InvalidRequest(format!(
                "replace job {} depends on job {} which is scheduled after it in this drain; \
                 submit the replace after its base has run, or do not give it higher priority",
                id.0, spec.base.0
            ))),
            None if spec.base.0 >= self.next_job => self.revive_seed(design).ok_or_else(|| {
                PlaceError::InvalidRequest(format!(
                    "replace job {} depends on job {} which was never submitted to this \
                         service",
                    id.0, spec.base.0
                ))
            }),
            None if self.queue.iter().any(|(qid, _)| *qid == spec.base) => {
                Err(PlaceError::InvalidRequest(format!(
                    "replace job {} depends on job {} which is still queued and has not run",
                    id.0, spec.base.0
                )))
            }
            None => self.revive_seed(design).ok_or_else(|| {
                PlaceError::InvalidRequest(format!(
                    "replace job {} depends on job {} whose result was already taken \
                     (results are take-once); keep the base result until the replace has run",
                    id.0, spec.base.0
                ))
            }),
        }
    }

    /// Persists a successful job's winning placement (and evaluated cell
    /// placement, when present) as the design's warm-start seed file. A
    /// no-op without a spill directory; a failed write is simply not
    /// counted.
    fn persist_seed(&mut self, handle: DesignHandle, outcome: &PlaceOutcome) {
        let Some(tier) = self.store.spill_tier().cloned() else { return };
        let Some(design) = self.store.get_design(handle) else { return };
        let fp = seed_fingerprint(self.store.key(handle), design.geometry_fingerprint());
        let seed = WarmSeed {
            placement: outcome.placement.clone(),
            cells: outcome.metrics.as_ref().map(|m| m.cell_placement.clone()),
        };
        if tier.store(&seed_stem(fp), fp, &encode_seed(&seed)) {
            self.seed_spills += 1;
        }
    }

    /// Revives the design's persisted warm-start seed from the spill
    /// directory, validated against the resident design (macro count, cell
    /// ids in range). `None` without a spill directory, without a resident
    /// design, or on any malformed or mismatched file.
    fn revive_seed(&mut self, handle: DesignHandle) -> Option<WarmSeed> {
        let tier = self.store.spill_tier().cloned()?;
        let design = self.store.get_design(handle)?;
        let fp = seed_fingerprint(self.store.key(handle), design.geometry_fingerprint());
        let seed = decode_seed(&tier.load(&seed_stem(fp), fp)?)?;
        let cells_ok = seed.cells.as_ref().is_none_or(|c| c.positions.len() <= design.num_cells());
        if seed.placement.macros.len() != design.num_macros()
            || seed.placement.macros.iter().any(|m| m.cell.0 as usize >= design.num_cells())
            || !cells_ok
        {
            return None;
        }
        self.seed_revives += 1;
        Some(seed)
    }

    /// Runs one job through the engine, in a context borrowing the store's
    /// caches and the service's cancel token. `later` lists the jobs
    /// scheduled after this one in the current drain (for dependency
    /// diagnostics); it is empty outside a drain.
    fn run_job(
        &mut self,
        id: JobId,
        job: &PlaceJob,
        later: &[JobId],
    ) -> Result<JobResult, PlaceError> {
        if job.design.0 as usize >= self.store.len() {
            return Err(PlaceError::InvalidRequest(format!(
                "job {} names design handle {} but the store holds {} designs",
                id.0,
                job.design.0,
                self.store.len()
            )));
        }
        if job.seeds.is_empty() {
            return Err(PlaceError::InvalidRequest(format!("job {} has no seeds to run", id.0)));
        }
        let placer = self.registry.create(&job.flow)?;

        // Replace jobs resolve their warm-start seed first, then mutate the
        // interned design through the store so the fingerprint diff decides
        // which cached artifacts survive.
        let mut base_seed = None;
        let mut edit_log = None;
        if let Some(spec) = &job.replace {
            let mut base = self.resolve_replace_base(id, job.design, spec, later)?;
            // MoveMacro carries no design state: it parameterizes the
            // warm-start seed, so fold the target into the base placement
            // here and let the flow re-legalize from the moved footprint.
            for edit in &spec.edits {
                if let netlist::DesignEdit::MoveMacro { cell, to } = edit {
                    if let Some(m) = base.placement.macros.iter_mut().find(|m| m.cell == *cell) {
                        m.location = *to;
                    }
                }
            }
            base_seed = Some(base);
            if !spec.edits.is_empty() {
                let log = self.store.apply_edits(job.design, &spec.edits).map_err(|e| match e {
                    PlaceError::InvalidRequest(msg) => {
                        PlaceError::InvalidRequest(format!("replace job {}: {msg}", id.0))
                    }
                    other => other,
                })?;
                edit_log = Some(log);
            }
        }

        let design = self.store.get_design(job.design).ok_or_else(|| {
            PlaceError::InvalidRequest(format!(
                "job {} names design handle {} but that design was released and evicted; \
                 re-intern it before submitting jobs against it",
                id.0, job.design.0
            ))
        })?;

        let mut ctx = self.store.context().with_cancel_token(self.cancel.clone());
        if let Some(observer) = &job.observer {
            ctx = ctx.with_observer(observer.clone());
        }

        let mut template = PlaceRequest::new(design);
        if let Some(effort) = job.effort {
            template = template.with_effort(effort);
        }
        if let Some(die) = job.die {
            template = template.with_die(die);
        }
        if let Some(eval) = job.evaluate {
            template = template.with_evaluation(eval);
        }
        if let Some(base) = &base_seed {
            template = template.with_warm_start(&base.placement);
            if let Some(cells) = &base.cells {
                template = template.with_warm_cells(cells);
            }
        }

        let result = if job.num_runs() == 1 {
            // single run: straight through the Placer trait (composite flows
            // like the handFP oracle are fine here)
            let &seed = job
                .seeds
                .first()
                .ok_or_else(|| PlaceError::InvalidRequest("job has no seeds".to_string()))?;
            let mut request = template.with_seed(seed);
            if let Some(&lambda) = job.lambdas.first() {
                request = request.with_lambda(lambda);
            }
            let outcome = placer.place(&request, &mut ctx)?;
            let summary = RunSummary {
                index: 0,
                seed: outcome.seed,
                lambda: outcome.lambda.unwrap_or(f64::NAN),
                score: None,
                error: None,
                wall_s: outcome.wall_s,
            };
            JobResult {
                job: id,
                design: job.design,
                outcome,
                winner_index: 0,
                runs: vec![summary],
                edit_log,
            }
        } else {
            // multi-run: a seed×λ grid through the batch runner. Flows
            // without a λ knob sweep seeds only; an empty λ list sweeps at
            // λ = 0.5.
            let lambdas = if !placer.supports_lambda() || job.lambdas.is_empty() {
                vec![*job.lambdas.first().unwrap_or(&0.5)]
            } else {
                job.lambdas.clone()
            };
            let grid = BatchGrid::new(job.seeds.clone(), lambdas);
            let runner = BatchRunner::new().with_jobs(self.jobs);
            let batch = runner.run(placer.as_ref(), &template, &grid, &mut ctx)?;
            JobResult {
                job: id,
                design: job.design,
                outcome: batch.winner,
                winner_index: batch.winner_index,
                runs: batch.runs,
                edit_log,
            }
        };
        // the winning placement becomes the design's persisted warm-start
        // seed, so a later replace survives a service restart
        self.persist_seed(job.design, &result.outcome);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::builtin_registry;
    use crate::observer::{CollectingObserver, StageEvent};
    use geometry::Rect;
    use netlist::design::{Design, DesignBuilder};

    /// A pipeline design parameterized by name and register count so tests
    /// can intern several distinct designs.
    fn pipeline_design(name: &str, regs: usize) -> Design {
        let mut b = DesignBuilder::new(name);
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..regs {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    fn service() -> PlacementService {
        PlacementService::new(builtin_registry())
    }

    #[test]
    fn single_run_job_produces_a_result() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        assert_eq!(svc.pending(), 1);
        assert_eq!(svc.run_all(), 1);
        assert_eq!(svc.pending(), 0);
        let result = svc.take_result(job).expect("ran").expect("succeeded");
        assert_eq!(result.job, job);
        assert_eq!(result.design, d);
        assert_eq!(result.outcome.placement.macros.len(), 2);
        assert_eq!(result.runs.len(), 1);
        // results are take-once: a second take names the id in a
        // structured error instead of silently returning nothing
        match svc.take_result(job) {
            Some(Err(PlaceError::InvalidRequest(msg))) => {
                assert!(msg.contains("job 0"), "{msg}");
                assert!(msg.contains("already taken"), "{msg}");
            }
            other => panic!("expected a structured already-taken error, got {other:?}"),
        }
    }

    #[test]
    fn take_result_on_an_unknown_id_names_it() {
        let mut svc = service();
        match svc.take_result(JobId(42)) {
            Some(Err(PlaceError::InvalidRequest(msg))) => {
                assert!(msg.contains("job 42"), "{msg}");
                assert!(msg.contains("never submitted"), "{msg}");
            }
            other => panic!("expected a structured unknown-id error, got {other:?}"),
        }
    }

    #[test]
    fn take_result_on_a_queued_job_is_none() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(PlaceJob::new(d, "hidap"));
        assert!(svc.take_result(job).is_none(), "queued jobs have no result yet");
        assert_eq!(svc.queued_len(), 1, "probing must not consume the job");
    }

    #[test]
    fn priorities_reorder_the_drain_deterministically() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let obs = Arc::new(CollectingObserver::new());
        let spec = |priority, seed| {
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_seeds(vec![seed])
                .with_priority(priority)
                .with_observer(obs.clone())
        };
        // submitted low, high, normal, high: drain order must be the two
        // highs in submission order, then normal, then low
        let low = svc.submit(spec(-1, 11));
        let high_a = svc.submit(spec(5, 12));
        let normal = svc.submit(spec(0, 13));
        let high_b = svc.submit(spec(5, 14));
        assert_eq!(svc.job_state(high_a), JobState::Queued { position: 0, priority: 5 });
        assert_eq!(svc.job_state(high_b), JobState::Queued { position: 1, priority: 5 });
        assert_eq!(svc.job_state(normal), JobState::Queued { position: 2, priority: 0 });
        assert_eq!(svc.job_state(low), JobState::Queued { position: 3, priority: -1 });
        svc.run_all();
        let seeds: Vec<u64> = obs
            .events()
            .iter()
            .filter_map(|e| match e {
                StageEvent::FlowStarted { seed, .. } => Some(*seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds, vec![12, 14, 13, 11], "drain order follows priority then FIFO");
        for job in [low, high_a, normal, high_b] {
            assert!(svc.take_result(job).unwrap().is_ok());
        }
    }

    #[test]
    fn priority_never_changes_a_job_result() {
        let run = |priority| {
            let mut svc = service();
            let d = svc.intern(pipeline_design("p1", 8));
            let job = svc.submit(
                PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast).with_priority(priority),
            );
            // an extra competing job so the priority actually reorders
            svc.submit(
                PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast).with_seeds(vec![7]),
            );
            svc.run_all();
            svc.take_result(job).unwrap().unwrap()
        };
        let ahead = run(10);
        let behind = run(-10);
        assert_eq!(ahead.outcome.placement, behind.outcome.placement);
        assert_eq!(ahead.outcome.seed, behind.outcome.seed);
    }

    #[test]
    fn job_state_walks_the_lifecycle() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        assert_eq!(svc.job_state(JobId(0)), JobState::Unknown);
        let job = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        assert_eq!(svc.job_state(job), JobState::Queued { position: 0, priority: 0 });
        svc.run_all();
        assert_eq!(svc.job_state(job), JobState::Finished { ok: true });
        svc.take_result(job).unwrap().unwrap();
        assert_eq!(svc.job_state(job), JobState::Taken);
    }

    #[test]
    fn cancel_queued_removes_only_the_named_job() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let doomed = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        let kept = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        assert!(svc.cancel_queued(doomed));
        assert!(!svc.cancel_queued(doomed), "a job can only be cancelled once");
        assert_eq!(svc.queued_len(), 1);
        assert!(matches!(svc.take_result(doomed), Some(Err(PlaceError::Cancelled))));
        svc.run_all();
        assert!(svc.take_result(kept).unwrap().is_ok(), "the other job still runs");
    }

    #[test]
    fn stats_snapshot_matches_the_store() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        );
        let before = svc.stats();
        assert_eq!(before.queued, 1);
        assert_eq!(before.completed, 0);
        assert_eq!(before.interned_designs, 1);
        assert_eq!(before.resident_designs, 1);
        assert_eq!(before.design_bytes, svc.store().design_bytes());
        assert_eq!(before.memory_budget, None);
        svc.run_all();
        let after = svc.stats();
        assert_eq!(after.queued, 0);
        assert_eq!(after.completed, 1);
        assert!(after.artifact_bytes > 0, "the run populated the artifact cache");
        assert_eq!(after.resident_bytes, after.design_bytes + after.artifact_bytes);
        assert_eq!(
            after.peak_resident_bytes, after.resident_bytes,
            "nothing was evicted, so the high-water mark is the current residency"
        );
        assert!(after.peak_resident_bytes >= before.peak_resident_bytes);
        assert_eq!(after.artifacts, svc.store().artifacts().stats());
        svc.take_result(job).unwrap().unwrap();
        assert_eq!(svc.stats().completed, 0);
    }

    #[test]
    fn unknown_flow_fails_the_job_not_the_service() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let bad = svc.submit(PlaceJob::new(d, "nope"));
        let good = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        svc.run_all();
        assert!(matches!(svc.take_result(bad), Some(Err(PlaceError::UnknownFlow { .. }))));
        assert!(svc.take_result(good).unwrap().is_ok());
    }

    #[test]
    fn job_ids_stay_isolated_under_interleaved_submission() {
        // two designs, two jobs each, submitted interleaved: every result
        // must match the same job run in isolation on a fresh service
        let mut svc = service();
        let da = svc.intern(pipeline_design("alpha", 8));
        let db = svc.intern(pipeline_design("beta", 12));
        let spec = |design, seeds: Vec<u64>| {
            PlaceJob::new(design, "hidap").with_effort(EffortLevel::Fast).with_seeds(seeds)
        };
        let jobs = [
            svc.submit(spec(da, vec![1, 2])),
            svc.submit(spec(db, vec![3])),
            svc.submit(spec(da, vec![5])),
            svc.submit(spec(db, vec![1, 2])),
        ];
        svc.run_all();
        let interleaved: Vec<JobResult> =
            jobs.iter().map(|&j| svc.take_result(j).unwrap().unwrap()).collect();

        let isolated: Vec<JobResult> =
            [(da, vec![1u64, 2]), (db, vec![3]), (da, vec![5]), (db, vec![1, 2])]
                .into_iter()
                .map(|(design_src, seeds)| {
                    let mut fresh = service();
                    let d = fresh.intern(pipeline_design(
                        if design_src == da { "alpha" } else { "beta" },
                        if design_src == da { 8 } else { 12 },
                    ));
                    let job = fresh.submit(spec(d, seeds));
                    fresh.run_all();
                    fresh.take_result(job).unwrap().unwrap()
                })
                .collect();

        for (i, (got, want)) in interleaved.iter().zip(&isolated).enumerate() {
            assert_eq!(got.outcome.placement, want.outcome.placement, "job {i}");
            assert_eq!(got.outcome.seed, want.outcome.seed, "job {i}");
            assert_eq!(got.winner_index, want.winner_index, "job {i}");
        }
    }

    #[test]
    fn warm_results_are_bit_identical_to_cold() {
        let mut svc = service();
        let designs = [
            svc.intern(pipeline_design("alpha", 8)),
            svc.intern(pipeline_design("beta", 12)),
            svc.intern(pipeline_design("gamma", 16)),
        ];
        let spec = |d| {
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard())
        };
        let cold: Vec<JobId> = designs.iter().map(|&d| svc.submit(spec(d))).collect();
        svc.run_all();
        let cold_stats = svc.store().artifacts().stats();
        assert_eq!(cold_stats.seq.misses, 3, "cold pass builds every sequential graph");
        assert_eq!(cold_stats.net.misses, 3, "cold pass builds every netlist graph");
        let warm: Vec<JobId> = designs.iter().map(|&d| svc.submit(spec(d))).collect();
        svc.run_all();
        let warm_stats = svc.store().artifacts().stats();
        assert!(warm_stats.seq.hits >= 3, "warm pass reuses the stored graphs");
        assert_eq!(warm_stats.seq.misses, 3, "warm pass builds no sequential graph");
        assert_eq!(warm_stats.net.misses, 3, "warm pass builds no netlist graph");
        for (c, w) in cold.into_iter().zip(warm) {
            let cold_result = svc.take_result(c).unwrap().unwrap();
            let warm_result = svc.take_result(w).unwrap().unwrap();
            assert_eq!(cold_result.outcome.placement, warm_result.outcome.placement);
            assert_eq!(cold_result.outcome.metrics, warm_result.outcome.metrics);
        }
    }

    #[test]
    fn replace_job_warm_starts_and_keeps_artifacts_on_pure_geometry() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let base = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        );
        svc.run_all();
        let cold_stats = svc.store().artifacts().stats();

        let ram = svc.store().get_design(d).unwrap().find_cell("u_a/ram").unwrap();
        let edits = vec![netlist::DesignEdit::ResizeCell { cell: ram, width: 220, height: 160 }];
        let replace = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard())
                .with_replace(base, edits),
        );
        svc.run_all();
        let result = svc.take_result(replace).unwrap().unwrap();
        let log = result.edit_log.as_ref().expect("replace ran an edit script");
        assert!(log.diff.is_pure_geometry());
        assert!(log.diff.geometry_changed(), "the resize changed the geometry fingerprint");
        let warm_stats = svc.store().artifacts().stats();
        assert_eq!(
            warm_stats.seq.misses, cold_stats.seq.misses,
            "a pure-geometry replace rebuilds no sequential graph"
        );
        assert_eq!(
            warm_stats.net.misses, cold_stats.net.misses,
            "a pure-geometry replace rebuilds no netlist graph"
        );
        let edited = svc.store().get_design(d).unwrap();
        assert!(result.outcome.placement.is_legal(edited));
        assert!(result.outcome.metrics.is_some());
        // the base result was only referenced, never consumed
        assert!(svc.take_result(base).unwrap().is_ok());
    }

    #[test]
    fn move_macro_edits_steer_the_warm_start_seed() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let base = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        );
        svc.run_all();

        let design = svc.store().get_design(d).unwrap();
        let ram_a = design.find_cell("u_a/ram").unwrap();
        let ram_b = design.find_cell("u_b/ram").unwrap();
        // swap the two equal-footprint macros: both targets are legal slots
        // of the base placement, so re-legalization keeps them where the
        // edit put them
        let base_result = svc.take_result(base).unwrap().unwrap();
        let at_a = base_result.outcome.placement.placement_of(ram_a).unwrap().location;
        let at_b = base_result.outcome.placement.placement_of(ram_b).unwrap().location;
        assert_ne!(at_a, at_b);
        // resubmit the base so the replace has a held result to warm from
        let base = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        );
        svc.run_all();
        let edits = vec![
            netlist::DesignEdit::MoveMacro { cell: ram_a, to: at_b },
            netlist::DesignEdit::MoveMacro { cell: ram_b, to: at_a },
        ];
        let replace = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard())
                .with_replace(base, edits),
        );
        svc.run_all();
        let result = svc.take_result(replace).unwrap().unwrap();
        let log = result.edit_log.as_ref().unwrap();
        assert!(log.placement_seed, "MoveMacro flags the placement seed");
        assert!(log.diff.is_pure_geometry());
        assert!(!log.diff.geometry_changed(), "a move does not change the footprint geometry");
        let placed_a = result.outcome.placement.placement_of(ram_a).unwrap().location;
        let placed_b = result.outcome.placement.placement_of(ram_b).unwrap().location;
        assert_eq!(placed_a, at_b, "the seed move survived re-legalization");
        assert_eq!(placed_b, at_a, "the seed move survived re-legalization");
        let design = svc.store().get_design(d).unwrap();
        assert!(result.outcome.placement.is_legal(design));
    }

    #[test]
    fn rewire_replace_rebuilds_the_identity_keyed_artifacts() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let base = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        );
        svc.run_all();
        let cold_stats = svc.store().artifacts().stats();

        let design = svc.store().get_design(d).unwrap();
        let ram_b = design.find_cell("u_b/ram").unwrap();
        let net = design.find_net("n0_0").unwrap();
        let reg = design.find_cell("u_x/pipe_reg[0]").unwrap();
        let edits =
            vec![netlist::DesignEdit::RewireNet { net, driver: Some(ram_b), sinks: vec![reg] }];
        let replace = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard())
                .with_replace(base, edits),
        );
        svc.run_all();
        let result = svc.take_result(replace).unwrap().unwrap();
        assert!(result.edit_log.unwrap().diff.wiring_changed());
        let warm_stats = svc.store().artifacts().stats();
        assert_eq!(
            warm_stats.seq.misses,
            cold_stats.seq.misses + 1,
            "a wiring edit changes the identity, so evaluation rebuilds Gseq"
        );
    }

    #[test]
    fn replace_with_a_taken_base_names_the_dependency() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let base = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        svc.run_all();
        svc.take_result(base).unwrap().unwrap();
        let replace = svc.submit(
            PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast).with_replace(base, Vec::new()),
        );
        svc.run_all();
        match svc.take_result(replace) {
            Some(Err(PlaceError::InvalidRequest(msg))) => {
                assert!(msg.contains(&format!("job {}", base.0)), "{msg}");
                assert!(msg.contains("already taken"), "{msg}");
            }
            other => panic!("expected a structured dependency error, got {other:?}"),
        }
    }

    #[test]
    fn replace_scheduled_before_its_base_is_a_structured_error() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let base = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        // higher priority drains the replace before its base
        let replace = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_replace(base, Vec::new())
                .with_priority(5),
        );
        svc.run_all();
        match svc.take_result(replace) {
            Some(Err(PlaceError::InvalidRequest(msg))) => {
                assert!(msg.contains("scheduled after"), "{msg}");
            }
            other => panic!("expected a structured ordering error, got {other:?}"),
        }
        assert!(svc.take_result(base).unwrap().is_ok(), "the base itself still ran");
    }

    #[test]
    fn replace_with_an_unknown_base_is_a_structured_error() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let replace = svc.submit(
            PlaceJob::new(d, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_replace(JobId(99), Vec::new()),
        );
        svc.run_all();
        match svc.take_result(replace) {
            Some(Err(PlaceError::InvalidRequest(msg))) => {
                assert!(msg.contains("job 99"), "{msg}");
                assert!(msg.contains("never submitted"), "{msg}");
            }
            other => panic!("expected a structured unknown-base error, got {other:?}"),
        }
    }

    #[test]
    fn peak_queued_watermark_survives_the_drain() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        assert_eq!(svc.stats().peak_queued, 0);
        let jobs: Vec<JobId> = (0..3)
            .map(|_| svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast)))
            .collect();
        assert_eq!(svc.stats().peak_queued, 3);
        svc.run_all();
        let stats = svc.stats();
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.peak_queued, 3, "the watermark reports the deepest backlog seen");
        for job in jobs {
            svc.take_result(job).unwrap().unwrap();
        }
        // a shallower later burst does not lower the mark
        svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        assert_eq!(svc.stats().peak_queued, 3);
    }

    #[test]
    fn per_job_observers_see_only_their_job() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let obs_a = Arc::new(CollectingObserver::new());
        let obs_b = Arc::new(CollectingObserver::new());
        let base = PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast);
        let a = svc.submit(base.clone().with_seeds(vec![1, 2]).with_observer(obs_a.clone()));
        let b = svc.submit(base.with_observer(obs_b.clone()));
        svc.run_all();
        assert!(svc.take_result(a).unwrap().is_ok());
        assert!(svc.take_result(b).unwrap().is_ok());
        // job a swept two seeds; job b was a single run with no batch events
        assert_eq!(obs_a.count(|e| matches!(e, StageEvent::BatchRunStarted { .. })), 2);
        assert_eq!(obs_a.count(|e| matches!(e, StageEvent::FlowStarted { .. })), 2);
        assert_eq!(obs_b.count(|e| matches!(e, StageEvent::BatchRunStarted { .. })), 0);
        assert_eq!(obs_b.count(|e| matches!(e, StageEvent::FlowStarted { .. })), 1);
    }

    #[test]
    fn cancellation_fails_queued_jobs() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        svc.cancel_token().cancel();
        svc.run_all();
        assert!(matches!(svc.take_result(job), Some(Err(PlaceError::Cancelled))));
        // the cancellation consumed itself: a job submitted afterwards runs
        let retry = svc.submit(PlaceJob::new(d, "hidap").with_effort(EffortLevel::Fast));
        svc.run_all();
        assert!(svc.take_result(retry).unwrap().is_ok(), "service must recover after a cancel");
    }

    #[test]
    fn empty_seed_list_is_an_invalid_request() {
        let mut svc = service();
        let d = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(PlaceJob::new(d, "hidap").with_seeds(vec![]));
        svc.run_all();
        assert!(matches!(svc.take_result(job), Some(Err(PlaceError::InvalidRequest(_)))));
    }

    #[test]
    fn foreign_design_handle_is_rejected() {
        let mut svc = service();
        let _ = svc.intern(pipeline_design("p1", 8));
        let job = svc.submit(PlaceJob::new(DesignHandle(7), "hidap"));
        svc.run_all();
        assert!(matches!(svc.take_result(job), Some(Err(PlaceError::InvalidRequest(_)))));
    }
}
