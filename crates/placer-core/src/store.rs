//! The multi-design store: interned designs behind cheap handles, with the
//! per-design derived artifacts owned centrally and shared across jobs.
//!
//! A [`DesignStore`] turns the "one design per context" shape of the
//! single-design stack into a service-grade boundary:
//!
//! * designs are **interned** — inserting the same design (same
//!   [`DesignKey`]: name, counts, wiring fingerprint, sequential names)
//!   twice returns the same dense, copyable [`DesignHandle`],
//! * the CSR [`netlist::Connectivity`] view is **built once per design** at
//!   intern time and travels with the stored design, so every job placing or
//!   evaluating through the store reuses it,
//! * the sequential graph `Gseq` lives in one **bounded LRU**
//!   ([`eval::SeqGraphCache`]) keyed by design identity and shared by every
//!   context the store hands out — a warm design skips the dominant
//!   evaluation setup cost regardless of which job touches it.

use crate::context::PlaceContext;
use eval::{DesignKey, SeqGraphCache};
use netlist::dense::DenseId;
use netlist::design::Design;
use std::collections::HashMap;
use std::sync::Arc;

/// A cheap, copyable reference to a design interned in a [`DesignStore`].
///
/// Handles are dense indices (`0..store.len()`), so per-design bookkeeping
/// in front ends can live in flat arrays keyed by handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignHandle(pub u32);

impl DenseId for DesignHandle {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

/// The store: interned designs plus their shared derived artifacts.
#[derive(Debug, Clone)]
pub struct DesignStore {
    designs: Vec<Arc<Design>>,
    keys: Vec<DesignKey>,
    /// Identity → handle, the interning index. A [`DesignKey`] covers name,
    /// counts, wiring and sequential names but no geometry (the artifacts it
    /// keys are die-independent), so interning pairs it with
    /// [`Design::geometry_fingerprint`]: the same netlist under different
    /// LEF footprints, die or port placement interns separately.
    index: HashMap<(DesignKey, u64), DesignHandle>,
    /// The bounded, design-keyed `Gseq` LRU every job shares.
    seq_graphs: SeqGraphCache,
}

impl Default for DesignStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignStore {
    /// An empty store with the default sequential-graph LRU capacity
    /// ([`SeqGraphCache::DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_seq_capacity(SeqGraphCache::DEFAULT_CAPACITY)
    }

    /// An empty store whose sequential-graph LRU keeps at most `capacity`
    /// designs (clamped to ≥ 1). The designs themselves are never evicted —
    /// only the derived graphs are bounded.
    pub fn with_seq_capacity(capacity: usize) -> Self {
        Self {
            designs: Vec::new(),
            keys: Vec::new(),
            index: HashMap::new(),
            seq_graphs: SeqGraphCache::with_capacity(capacity),
        }
    }

    /// Interns a design: returns the existing handle when a design with the
    /// same identity ([`DesignKey`] plus geometry fingerprint) was inserted
    /// before, otherwise stores the design (building and caching its
    /// connectivity view) under a new dense handle.
    pub fn intern(&mut self, design: Design) -> DesignHandle {
        // keying builds the CSR view; it stays cached inside the stored
        // design, so every later borrower gets it for free
        let key = DesignKey::of(&design);
        let geometry = design.geometry_fingerprint();
        if let Some(&handle) = self.index.get(&(key.clone(), geometry)) {
            return handle;
        }
        let handle = DesignHandle(self.designs.len() as u32);
        self.designs.push(Arc::new(design));
        self.keys.push(key.clone());
        self.index.insert((key, geometry), handle);
        handle
    }

    /// The design behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this store.
    pub fn design(&self, handle: DesignHandle) -> &Design {
        &self.designs[handle.index()]
    }

    /// A shared reference to the design behind a handle (for jobs that need
    /// to outlive a borrow of the store).
    pub fn design_arc(&self, handle: DesignHandle) -> Arc<Design> {
        self.designs[handle.index()].clone()
    }

    /// The identity key a handle was interned under.
    pub fn key(&self, handle: DesignHandle) -> &DesignKey {
        &self.keys[handle.index()]
    }

    /// Finds the handle of the first interned design with this identity key
    /// (designs interned under several geometries share the key; use
    /// [`DesignStore::intern`] with the concrete design to resolve exactly).
    pub fn find(&self, key: &DesignKey) -> Option<DesignHandle> {
        self.keys.iter().position(|k| k == key).map(DesignHandle::from_index)
    }

    /// Finds the handle of the first interned design with this name.
    pub fn find_by_name(&self, name: &str) -> Option<DesignHandle> {
        self.keys.iter().position(|k| k.name() == name).map(DesignHandle::from_index)
    }

    /// Number of distinct designs interned.
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// Whether the store holds no design.
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }

    /// Iterates over `(handle, design)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (DesignHandle, &Design)> + '_ {
        self.designs.iter().enumerate().map(|(i, d)| (DesignHandle::from_index(i), d.as_ref()))
    }

    /// The shared sequential-graph LRU (hit/miss counters included).
    pub fn seq_graphs(&self) -> &SeqGraphCache {
        &self.seq_graphs
    }

    /// A fresh [`PlaceContext`] borrowing this store's artifact caches:
    /// every evaluation running through it hits the shared `Gseq` LRU
    /// instead of a context-private slot.
    pub fn context(&self) -> PlaceContext {
        PlaceContext::new().with_seq_cache(self.seq_graphs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    fn design(name: &str, flop: &str) -> Design {
        let mut b = DesignBuilder::new(name);
        let m = b.add_macro(format!("{name}/ram"), "RAM", 200, 150, name);
        let f = b.add_flop(flop, "");
        let n = b.add_net("n");
        b.connect_driver(n, f);
        b.connect_sink(n, m);
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn duplicate_designs_intern_to_the_same_handle() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let same = store.intern(design("alpha", "r_reg[0]"));
        assert_eq!(a, same);
        assert_eq!(store.len(), 1);
        let b = store.intern(design("beta", "r_reg[0]"));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.design(a).name(), "alpha");
        assert_eq!(store.design(b).name(), "beta");
    }

    #[test]
    fn same_netlist_different_geometry_gets_a_new_handle() {
        // identical wiring and names — only the die differs (the shape a
        // --manifest produces when one netlist is listed with two DEFs)
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let mut resized = design("alpha", "r_reg[0]");
        resized.set_die(Rect::new(0, 0, 4000, 3000));
        let b = store.intern(resized);
        assert_ne!(a, b, "geometry is part of the interning identity");
        assert_eq!(store.len(), 2);
        assert_eq!(store.design(a).die(), Rect::new(0, 0, 2000, 1500));
        assert_eq!(store.design(b).die(), Rect::new(0, 0, 4000, 3000));
    }

    #[test]
    fn same_name_different_content_gets_a_new_handle() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let rewired = store.intern(design("alpha", "other_reg[0]"));
        assert_ne!(a, rewired, "identity is content, not just the name");
        assert_eq!(store.len(), 2);
        // name lookup returns the first intern
        assert_eq!(store.find_by_name("alpha"), Some(a));
    }

    #[test]
    fn handles_are_dense_and_lookup_roundtrips() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let b = store.intern(design("beta", "r_reg[0]"));
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(store.find(store.key(a)), Some(a));
        assert_eq!(store.find(store.key(b)), Some(b));
        let handles: Vec<DesignHandle> = store.iter().map(|(h, _)| h).collect();
        assert_eq!(handles, vec![a, b]);
    }

    #[test]
    fn store_contexts_share_one_seq_graph_lru() {
        let mut store = DesignStore::with_seq_capacity(4);
        let a = store.intern(design("alpha", "r_reg[0]"));
        let ctx1 = store.context();
        let ctx2 = store.context();
        let g1 = ctx1.evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        let g2 = ctx2.evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert!(std::sync::Arc::ptr_eq(&g1, &g2), "both contexts hit the store's LRU");
        assert_eq!(store.seq_graphs().misses(), 1);
        assert_eq!(store.seq_graphs().hits(), 1);
    }
}
