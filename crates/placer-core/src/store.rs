//! The multi-design store: interned designs behind cheap handles, with every
//! design-derived artifact owned centrally under one memory budget.
//!
//! A [`DesignStore`] turns the "one design per context" shape of the
//! single-design stack into a service-grade boundary:
//!
//! * designs are **interned** — inserting the same design (same
//!   [`DesignKey`] plus geometry fingerprint) twice returns the same dense,
//!   copyable [`DesignHandle`],
//! * the CSR [`netlist::Connectivity`] view is **built once per design** at
//!   intern time and travels with the stored design, so every job placing or
//!   evaluating through the store reuses it,
//! * the derived graphs (`Gnet`, `Gseq`) live in one **byte-budgeted**
//!   [`ArtifactCache`] shared by every context the store hands out — a warm
//!   design skips both the hidap flow's graph constructions and the dominant
//!   evaluation setup cost, regardless of which job touches it,
//! * handles are **refcounted** — every [`DesignStore::intern`] (or
//!   [`DesignStore::retain`]) adds a reference, [`DesignStore::release`]
//!   drops one, and only designs with zero live references are eligible for
//!   eviction, so a handle a caller still holds always resolves.
//!
//! # Ownership model
//!
//! The **store owns** the designs and their artifacts; **contexts borrow**.
//! [`DesignStore::context`] hands out [`PlaceContext`]s whose artifact cache
//! is a cheap clone (shared `Arc`) of the store's — flows and evaluators
//! running in those contexts fetch `Gnet`/`Gseq` from the store's pool and
//! hold plain `Arc`s while they run. Eviction (of an artifact or of a whole
//! design) only drops the *store's* reference: in-flight borrowers finish on
//! the graphs they hold, and the next fetch rebuilds bit-identically from
//! the design. Results therefore never depend on cache state — eviction
//! changes timing, never outcomes.
//!
//! # Memory budget
//!
//! [`DesignStore::with_memory_budget`] bounds the store's total resident
//! bytes — interned designs (with their CSR views) *plus* cached artifacts,
//! both measured through [`netlist::HeapSize`]. The artifact cache enforces
//! its share continuously; designs are evicted least-recently-interned
//! first, but **only when unreferenced**, whenever an intern or release
//! leaves the store over budget. An evicted design keeps its handle and its
//! slot: re-interning an equal design revives the same handle, rebuilds the
//! CSR view, and later fetches rebuild its artifacts on demand. With live
//! references everywhere, the budget is a soft target — the store never
//! invalidates a handle a caller still holds.

use crate::context::PlaceContext;
use eval::{ArtifactCache, DesignKey, SpillTier};
use netlist::dense::DenseId;
use netlist::design::Design;
use netlist::HeapSize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A cheap, copyable reference to a design interned in a [`DesignStore`].
///
/// Handles are dense indices (`0..store.len()`), so per-design bookkeeping
/// in front ends can live in flat arrays keyed by handle. A handle stays
/// valid for the lifetime of the store: eviction empties the slot but never
/// reassigns it, and re-interning an equal design revives the same handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignHandle(pub u32);

impl DenseId for DesignHandle {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

/// One entry of the store's design-eviction log: which design left, how many
/// bytes it freed, and when (on the store's monotonic intern/release clock).
///
/// The log is bounded ([`DesignStore::EVICTION_LOG_CAP`] most recent
/// entries) so a long-lived service can expose it over a stats surface
/// without growing without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionRecord {
    /// The evicted design's handle (still valid: re-interning revives it).
    pub handle: DesignHandle,
    /// The evicted design's name.
    pub name: String,
    /// Bytes the eviction freed (the design's [`HeapSize`] accounting; its
    /// purged artifacts are counted by the artifact cache's own counters).
    pub bytes: usize,
    /// Value of the store's recency clock when the eviction happened.
    pub at: u64,
}

/// One interned identity: the design (present while resident), its keys,
/// and the refcount/recency bookkeeping driving eviction.
#[derive(Debug, Clone)]
struct DesignSlot {
    /// `None` while the design is evicted.
    design: Option<Arc<Design>>,
    /// The identity key (the geometry half of the interning identity lives
    /// only in the index map — artifacts are keyed geometry-free).
    key: DesignKey,
    /// Live references: intern/retain add one, release drops one. Only
    /// zero-reference designs may be evicted.
    refs: usize,
    /// [`HeapSize`] bytes of the stored design (0 while evicted).
    bytes: usize,
    /// Recency stamp (from the store's clock) of the last intern/retain/
    /// release, ordering eviction candidates.
    last_use: u64,
}

/// The store: interned designs plus their shared derived artifacts. See the
/// [module docs](crate::store) for the ownership and budget model.
#[derive(Debug, Clone)]
pub struct DesignStore {
    slots: Vec<DesignSlot>,
    /// Identity → handle, the interning index. A [`DesignKey`] covers name,
    /// counts, wiring and sequential names but no geometry (the artifacts it
    /// keys are die-independent), so interning pairs it with
    /// [`Design::geometry_fingerprint`]: the same netlist under different
    /// LEF footprints, die or port placement interns separately. Entries
    /// survive eviction so a revived design gets its old handle back.
    index: HashMap<(DesignKey, u64), DesignHandle>,
    /// The byte-budgeted artifact cache every job shares.
    artifacts: ArtifactCache,
    /// Total-resident-bytes target (designs + artifacts); `None` = unbounded
    /// designs (the artifact cache still enforces its own default budget).
    memory_budget: Option<usize>,
    /// Monotonic recency clock for [`DesignSlot::last_use`].
    clock: u64,
    /// Designs evicted so far (artifact evictions are counted separately by
    /// the [`ArtifactCache`]).
    evictions: u64,
    /// High-water mark of [`DesignStore::resident_bytes`], sampled at every
    /// accounting event the store sees (intern/retain/release/reclaim/evict
    /// and service drains). Under a memory budget the *current* resident
    /// bytes tell only the post-eviction tail; the peak tells what the run
    /// actually needed.
    peak_bytes: usize,
    /// The most recent design evictions, newest last (bounded to
    /// [`DesignStore::EVICTION_LOG_CAP`] entries).
    eviction_log: VecDeque<EvictionRecord>,
    /// The optional disk spill tier (shared with [`DesignStore::artifacts`]):
    /// design eviction spills the cached CSR view, and intern tries to
    /// revive one before rebuilding. `None` = no spilling (the default).
    spill: Option<SpillTier>,
    /// CSR connectivity views written to the spill tier on design eviction.
    csr_spills: u64,
    /// CSR views revived from the spill tier at intern time (each one skips
    /// a full connectivity reconstruction).
    csr_revives: u64,
}

impl Default for DesignStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignStore {
    /// An empty store: unbounded designs, artifacts under the cache's
    /// default byte budget ([`ArtifactCache::DEFAULT_BUDGET_BYTES`]).
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            index: HashMap::new(),
            artifacts: ArtifactCache::new(),
            memory_budget: None,
            clock: 0,
            evictions: 0,
            eviction_log: VecDeque::new(),
            peak_bytes: 0,
            spill: None,
            csr_spills: 0,
            csr_revives: 0,
        }
    }

    /// An empty store bounding its **total** resident bytes — interned
    /// designs plus cached artifacts — to `budget`. The artifact cache gets
    /// the same budget (artifacts alone never exceed it); unreferenced
    /// designs are evicted, least recently used first, whenever the total
    /// is above budget after an intern or release.
    pub fn with_memory_budget(budget: usize) -> Self {
        Self {
            artifacts: ArtifactCache::with_budget(budget),
            memory_budget: Some(budget),
            ..Self::new()
        }
    }

    /// Attaches a disk spill tier rooted at `dir` to this store *and* its
    /// artifact cache (they share the directory, so one `--spill-dir` serves
    /// all three spillable kinds — `Gnet`, `Gseq` and the CSR view; see
    /// `docs/MEMORY.md`). With a tier attached:
    ///
    /// * evicting a design spills its cached CSR connectivity view to
    ///   `csr-<fingerprint>.spill`,
    /// * [`DesignStore::intern`] tries to revive a spilled CSR — verified
    ///   against the incoming design — before rebuilding it from scratch,
    /// * the artifact cache spills and revives `Gnet`/`Gseq` the same way.
    ///
    /// Spilling is strictly a timing optimization: revived structures are
    /// verified bit-identical, and every disk failure degrades to a plain
    /// rebuild miss.
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        let tier = SpillTier::new(dir);
        self.artifacts = self.artifacts.with_spill_tier(tier.clone());
        self.spill = Some(tier);
        self
    }

    /// The attached spill tier, if any (cheap to clone; clones address the
    /// same directory).
    pub fn spill_tier(&self) -> Option<&SpillTier> {
        self.spill.as_ref()
    }

    /// CSR connectivity views spilled to disk on design eviction.
    pub fn csr_spills(&self) -> u64 {
        self.csr_spills
    }

    /// CSR connectivity views revived from disk at intern time.
    pub fn csr_revives(&self) -> u64 {
        self.csr_revives
    }

    /// Tries to serve the design's CSR view from the spill tier: computes
    /// the streaming connectivity fingerprint (no materialization), probes
    /// `csr-<fingerprint>.spill`, and installs the decoded view after
    /// verifying it matches this exact design. On success the later
    /// [`DesignKey::of`] finds the view already cached and skips the
    /// rebuild. Any failure leaves the design untouched.
    fn try_revive_csr(&mut self, design: &Design) {
        let Some(tier) = &self.spill else { return };
        if design.cached_connectivity().is_some() {
            return;
        }
        let fp = netlist::Connectivity::fingerprint_of(design);
        let Some(payload) = tier.load(&format!("csr-{fp:016x}"), fp) else { return };
        let Some(view) = netlist::Connectivity::decode(&payload) else { return };
        if design.install_connectivity(view) {
            self.csr_revives += 1;
        }
    }

    /// Interns a design and adds one reference to it.
    ///
    /// Returns the existing handle when a design with the same identity
    /// ([`DesignKey`] plus geometry fingerprint) was interned before —
    /// reviving the slot (re-storing the design, rebuilding its CSR view)
    /// if it had been evicted. Otherwise stores the design under a new
    /// dense handle. Callers that are done with a handle pair each `intern`
    /// with a [`DesignStore::release`].
    pub fn intern(&mut self, design: Design) -> DesignHandle {
        // with a spill tier, a previously evicted design's CSR view revives
        // from disk here, so the keying below skips the reconstruction
        self.try_revive_csr(&design);
        // keying builds the CSR view; it stays cached inside the stored
        // design, so every later borrower gets it for free
        let key = DesignKey::of(&design);
        let geometry = design.geometry_fingerprint();
        self.clock += 1;
        let clock = self.clock;
        if let Some(&handle) = self.index.get(&(key.clone(), geometry)) {
            let slot = &mut self.slots[handle.index()];
            slot.refs += 1;
            slot.last_use = clock;
            if slot.design.is_none() {
                // revival: the evicted identity comes back under its old
                // handle; artifacts rebuild lazily on the next fetch
                slot.bytes = design.heap_bytes();
                slot.design = Some(Arc::new(design));
            }
            self.note_peak();
            self.enforce_budget();
            return handle;
        }
        let handle = DesignHandle(self.slots.len() as u32);
        self.slots.push(DesignSlot {
            bytes: design.heap_bytes(),
            design: Some(Arc::new(design)),
            key: key.clone(),
            refs: 1,
            last_use: clock,
        });
        self.index.insert((key, geometry), handle);
        self.note_peak();
        self.enforce_budget();
        handle
    }

    /// Adds a reference to a *resident* interned design (the counterpart of
    /// handing a copy of the handle to another owner). Only resident designs
    /// can be pinned — a reference on an evicted slot would promise a
    /// [`DesignStore::design`] lookup the store cannot serve; revive the
    /// design through [`DesignStore::intern`] instead (which also adds the
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this store, or if the design
    /// behind it was evicted.
    pub fn retain(&mut self, handle: DesignHandle) {
        self.clock += 1;
        let clock = self.clock;
        let slot = &mut self.slots[handle.index()];
        assert!(
            slot.design.is_some(),
            "cannot retain design handle {} after eviction; re-intern it",
            handle.0
        );
        slot.refs += 1;
        slot.last_use = clock;
    }

    /// Drops one reference to an interned design and returns the remaining
    /// count. At zero the design becomes eligible for budget-driven
    /// eviction (and is evicted immediately if the store is over budget);
    /// its handle stays valid and re-interning revives it.
    ///
    /// Releasing an already-unreferenced design is a true no-op returning 0
    /// — it touches neither the refcount nor the slot's eviction recency.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this store.
    pub fn release(&mut self, handle: DesignHandle) -> usize {
        if self.slots[handle.index()].refs == 0 {
            return 0;
        }
        self.clock += 1;
        let clock = self.clock;
        let slot = &mut self.slots[handle.index()];
        slot.refs -= 1;
        slot.last_use = clock;
        let refs = slot.refs;
        if refs == 0 {
            self.note_peak();
            self.enforce_budget();
        }
        refs
    }

    /// Live references to a design.
    pub fn ref_count(&self, handle: DesignHandle) -> usize {
        self.slots[handle.index()].refs
    }

    /// Whether the design behind a handle is currently resident (interned
    /// and not evicted).
    pub fn is_resident(&self, handle: DesignHandle) -> bool {
        self.slots.get(handle.index()).is_some_and(|s| s.design.is_some())
    }

    /// Re-applies the memory budget right now, evicting unreferenced
    /// designs while the total resident bytes exceed it, and returns how
    /// many designs were evicted. The store enforces the budget on every
    /// intern and release by itself; call this after work that grows the
    /// *artifact* side of the accounting (flow runs, evaluations) to keep
    /// the peak — not just the post-release tail — under the budget.
    pub fn reclaim(&mut self) -> usize {
        let before = self.evictions;
        self.note_peak();
        self.enforce_budget();
        (self.evictions - before) as usize
    }

    /// Evicts every unreferenced design right now, regardless of budget,
    /// purging their artifacts too. Returns how many designs were evicted.
    pub fn evict_unreferenced(&mut self) -> usize {
        self.note_peak();
        let mut evicted = 0;
        for i in 0..self.slots.len() {
            if self.slots[i].refs == 0 && self.slots[i].design.is_some() {
                self.evict_slot(i);
                evicted += 1;
            }
        }
        evicted
    }

    /// The design behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this store, or if the design
    /// was evicted (use [`DesignStore::get_design`] to probe, or re-intern
    /// to revive it).
    pub fn design(&self, handle: DesignHandle) -> &Design {
        self.get_design(handle)
            .unwrap_or_else(|| panic!("design handle {} was evicted; re-intern it", handle.0))
    }

    /// The design behind a handle, or `None` while it is evicted.
    pub fn get_design(&self, handle: DesignHandle) -> Option<&Design> {
        self.slots[handle.index()].design.as_deref()
    }

    /// A shared reference to the design behind a handle (for jobs that need
    /// to outlive a borrow of the store).
    ///
    /// # Panics
    ///
    /// Like [`DesignStore::design`], panics on foreign or evicted handles.
    pub fn design_arc(&self, handle: DesignHandle) -> Arc<Design> {
        self.slots[handle.index()]
            .design
            .clone()
            .unwrap_or_else(|| panic!("design handle {} was evicted; re-intern it", handle.0))
    }

    /// The identity key a handle was interned under (valid even while the
    /// design is evicted).
    pub fn key(&self, handle: DesignHandle) -> &DesignKey {
        &self.slots[handle.index()].key
    }

    /// Finds the handle of the first interned design with this identity key
    /// (designs interned under several geometries share the key; use
    /// [`DesignStore::intern`] with the concrete design to resolve exactly).
    ///
    /// Identities survive eviction, so the returned handle may be
    /// non-resident — probe with [`DesignStore::is_resident`] /
    /// [`DesignStore::get_design`] (or re-intern to revive) before calling
    /// the panicking accessors.
    pub fn find(&self, key: &DesignKey) -> Option<DesignHandle> {
        self.slots.iter().position(|s| s.key == *key).map(DesignHandle::from_index)
    }

    /// Finds the handle of the first interned design with this name. Like
    /// [`DesignStore::find`], the returned handle may refer to an evicted
    /// (non-resident) design.
    pub fn find_by_name(&self, name: &str) -> Option<DesignHandle> {
        self.slots.iter().position(|s| s.key.name() == name).map(DesignHandle::from_index)
    }

    /// Number of distinct design identities interned (resident or evicted).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no design identity.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of identities whose design is currently resident.
    pub fn resident_designs(&self) -> usize {
        self.slots.iter().filter(|s| s.design.is_some()).count()
    }

    /// Iterates over the resident `(handle, design)` pairs in intern order
    /// (evicted slots are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (DesignHandle, &Design)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.design.as_deref().map(|d| (DesignHandle::from_index(i), d)))
    }

    /// The shared artifact cache (per-kind statistics included).
    pub fn artifacts(&self) -> &ArtifactCache {
        &self.artifacts
    }

    /// Resident bytes of the interned designs (their CSR views included).
    pub fn design_bytes(&self) -> usize {
        self.slots.iter().filter(|s| s.design.is_some()).map(|s| s.bytes).sum()
    }

    /// Resident bytes of one design (0 while it is evicted).
    pub fn design_bytes_of(&self, handle: DesignHandle) -> usize {
        self.slots[handle.index()].bytes
    }

    /// Bytes pinned by *referenced* resident designs — the part of the
    /// accounting budget enforcement can never reclaim (live handles are
    /// never evicted). Admission control compares this floor against the
    /// budget: once it exceeds the budget, accepting more work cannot be
    /// served within it until something is released.
    pub fn pinned_design_bytes(&self) -> usize {
        self.slots.iter().filter(|s| s.refs > 0 && s.design.is_some()).map(|s| s.bytes).sum()
    }

    /// Total resident bytes: interned designs plus cached artifacts.
    pub fn resident_bytes(&self) -> usize {
        self.design_bytes() + self.artifacts.resident_bytes()
    }

    /// High-water mark of [`DesignStore::resident_bytes`] over the store's
    /// lifetime, as observed at accounting events (intern/release/reclaim/
    /// evict and service drains) plus the current residency. Under a memory
    /// budget this is the honest cost of the run: `resident_bytes` only
    /// shows the post-eviction tail.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_bytes.max(self.resident_bytes())
    }

    /// Folds the current residency into the high-water mark. Called at every
    /// `&mut` accounting point; [`DesignStore::peak_resident_bytes`] also
    /// samples the live residency so `&self` readers stay fresh between
    /// events (artifact caches grow behind shared handles).
    pub fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.resident_bytes());
    }

    /// The configured total-byte budget, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Designs evicted so far (by budget pressure or
    /// [`DesignStore::evict_unreferenced`]).
    pub fn design_evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum number of entries [`DesignStore::eviction_log`] retains.
    pub const EVICTION_LOG_CAP: usize = 64;

    /// The most recent design evictions, oldest first (at most
    /// [`DesignStore::EVICTION_LOG_CAP`] entries — older ones are dropped,
    /// the total count stays in [`DesignStore::design_evictions`]).
    pub fn eviction_log(&self) -> impl Iterator<Item = &EvictionRecord> + '_ {
        self.eviction_log.iter()
    }

    /// A fresh [`PlaceContext`] borrowing this store's artifact cache:
    /// every flow run and evaluation through it fetches `Gnet`/`Gseq` from
    /// the shared pool instead of a context-private cache.
    pub fn context(&self) -> PlaceContext {
        PlaceContext::new().with_artifacts(self.artifacts.clone())
    }

    /// Applies an ECO edit script to an interned design **in place** and
    /// invalidates selectively: the store consumes the edit log's
    /// [`netlist::FingerprintDiff`] and purges the design's `Gnet`/`Gseq`
    /// only when the artifact identity (wiring or sequential names) actually
    /// changed. A pure-geometry batch — macro resize, master swap, port
    /// move, die change — keeps every cached artifact warm, because
    /// artifacts are keyed geometry-free.
    ///
    /// The interning index is re-keyed to the edited identity, so the
    /// handle stays valid and re-interning the edited design resolves to
    /// it. If another handle already held the post-edit identity, the edited
    /// handle takes over that index entry (the interning invariant is
    /// per-identity-at-intern-time; edits may create duplicates knowingly).
    /// Borrowers holding [`DesignStore::design_arc`] of the pre-edit design
    /// keep an unedited snapshot — in-flight jobs finish on the design they
    /// started with.
    ///
    /// Returns the [`netlist::EditLog`]; a rejected script (unknown id, bad
    /// dimensions) is a [`crate::PlaceError::InvalidRequest`] and leaves design,
    /// index and artifacts untouched.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this store.
    pub fn apply_edits(
        &mut self,
        handle: DesignHandle,
        edits: &[netlist::DesignEdit],
    ) -> Result<netlist::EditLog, crate::error::PlaceError> {
        use crate::error::PlaceError;
        self.clock += 1;
        let clock = self.clock;
        let (old_key, old_geometry, new_key, log) = {
            let slot = &mut self.slots[handle.index()];
            let Some(arc) = slot.design.as_mut() else {
                return Err(PlaceError::InvalidRequest(format!(
                    "cannot edit design handle {}: it was evicted; re-intern it first",
                    handle.0
                )));
            };
            let old_key = slot.key.clone();
            let old_geometry = arc.geometry_fingerprint();
            // in-flight borrowers keep their pre-edit snapshot: make_mut
            // clones only when the Arc is shared
            let design = Arc::make_mut(arc);
            let log = design
                .apply_edits(edits)
                .map_err(|e| PlaceError::InvalidRequest(format!("edit rejected: {e}")))?;
            let new_key = DesignKey::of(design);
            slot.bytes = design.heap_bytes();
            slot.key = new_key.clone();
            slot.last_use = clock;
            (old_key, old_geometry, new_key, log)
        };
        let new_geometry = log.diff.geometry_after;
        if self.index.get(&(old_key.clone(), old_geometry)) == Some(&handle) {
            self.index.remove(&(old_key.clone(), old_geometry));
        }
        self.index.insert((new_key, new_geometry), handle);
        if log.diff.identity_changed() {
            // the old identity's artifacts are stale for this design; purge
            // them unless another resident design still answers to the key
            let key_still_used = self.slots.iter().any(|s| s.design.is_some() && s.key == old_key);
            if !key_still_used {
                self.artifacts.evict_design(&old_key);
            }
        }
        self.note_peak();
        self.enforce_budget();
        Ok(log)
    }

    /// Evicts unreferenced designs (least recently used first) while the
    /// total resident bytes exceed the budget.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.memory_budget else { return };
        while self.resident_bytes() > budget {
            let candidate = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.refs == 0 && s.design.is_some())
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i);
            match candidate {
                Some(i) => self.evict_slot(i),
                None => break, // everything left is live: soft target
            }
        }
    }

    /// Drops slot `i`'s design and purges its artifacts (unless another
    /// resident geometry variant still shares the same identity key),
    /// logging the eviction.
    fn evict_slot(&mut self, i: usize) {
        // demote the design's CSR view to the spill tier before dropping it:
        // a re-intern revives it by deserialization instead of rebuilding
        if let Some(tier) = &self.spill {
            if let Some(view) =
                self.slots[i].design.as_deref().and_then(|d| d.cached_connectivity())
            {
                let fp = view.fingerprint();
                let mut payload = Vec::new();
                view.encode(&mut payload);
                if tier.store(&format!("csr-{fp:016x}"), fp, &payload) {
                    self.csr_spills += 1;
                }
            }
        }
        let bytes = self.slots[i].bytes;
        self.slots[i].design = None;
        self.slots[i].bytes = 0;
        self.evictions += 1;
        if self.eviction_log.len() == Self::EVICTION_LOG_CAP {
            self.eviction_log.pop_front();
        }
        self.eviction_log.push_back(EvictionRecord {
            handle: DesignHandle::from_index(i),
            name: self.slots[i].key.name().to_string(),
            bytes,
            at: self.clock,
        });
        let key = self.slots[i].key.clone();
        let key_still_used = self.slots.iter().any(|s| s.design.is_some() && s.key == key);
        if !key_still_used {
            self.artifacts.evict_design(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::ArtifactKind;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    fn design(name: &str, flop: &str) -> Design {
        let mut b = DesignBuilder::new(name);
        let m = b.add_macro(format!("{name}/ram"), "RAM", 200, 150, name);
        let f = b.add_flop(flop, "");
        let n = b.add_net("n");
        b.connect_driver(n, f);
        b.connect_sink(n, m);
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn duplicate_designs_intern_to_the_same_handle() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let same = store.intern(design("alpha", "r_reg[0]"));
        assert_eq!(a, same);
        assert_eq!(store.len(), 1);
        assert_eq!(store.ref_count(a), 2, "each intern adds a reference");
        let b = store.intern(design("beta", "r_reg[0]"));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.design(a).name(), "alpha");
        assert_eq!(store.design(b).name(), "beta");
    }

    #[test]
    fn same_netlist_different_geometry_gets_a_new_handle() {
        // identical wiring and names — only the die differs (the shape a
        // --manifest produces when one netlist is listed with two DEFs)
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let mut resized = design("alpha", "r_reg[0]");
        resized.set_die(Rect::new(0, 0, 4000, 3000));
        let b = store.intern(resized);
        assert_ne!(a, b, "geometry is part of the interning identity");
        assert_eq!(store.len(), 2);
        assert_eq!(store.design(a).die(), Rect::new(0, 0, 2000, 1500));
        assert_eq!(store.design(b).die(), Rect::new(0, 0, 4000, 3000));
    }

    #[test]
    fn same_name_different_content_gets_a_new_handle() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let rewired = store.intern(design("alpha", "other_reg[0]"));
        assert_ne!(a, rewired, "identity is content, not just the name");
        assert_eq!(store.len(), 2);
        // name lookup returns the first intern
        assert_eq!(store.find_by_name("alpha"), Some(a));
    }

    #[test]
    fn handles_are_dense_and_lookup_roundtrips() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let b = store.intern(design("beta", "r_reg[0]"));
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(store.find(store.key(a)), Some(a));
        assert_eq!(store.find(store.key(b)), Some(b));
        let handles: Vec<DesignHandle> = store.iter().map(|(h, _)| h).collect();
        assert_eq!(handles, vec![a, b]);
    }

    #[test]
    fn store_contexts_share_one_artifact_cache() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let ctx1 = store.context();
        let ctx2 = store.context();
        let g1 = ctx1.evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        let g2 = ctx2.evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert!(std::sync::Arc::ptr_eq(&g1, &g2), "both contexts hit the store's cache");
        assert_eq!(store.artifacts().stats().seq.misses, 1);
        assert_eq!(store.artifacts().stats().seq.hits, 1);
    }

    #[test]
    fn release_then_evict_unreferenced_frees_the_design_and_its_artifacts() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let b = store.intern(design("beta", "r_reg[0]"));
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert!(store.artifacts().contains(ArtifactKind::SeqGraph, store.key(a)));

        assert_eq!(store.release(a), 0);
        assert_eq!(store.evict_unreferenced(), 1, "only the released design leaves");
        assert!(!store.is_resident(a));
        assert!(store.is_resident(b), "the live handle is untouched");
        assert_eq!(store.resident_designs(), 1);
        assert_eq!(store.len(), 2, "the identity slot survives eviction");
        assert_eq!(store.design_evictions(), 1);
        assert!(
            !store.artifacts().contains(ArtifactKind::SeqGraph, store.key(a)),
            "design eviction purges the design's artifacts"
        );
        assert!(store.get_design(a).is_none());
    }

    #[test]
    fn reintern_revives_the_same_handle() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        store.release(a);
        store.evict_unreferenced();
        assert!(!store.is_resident(a));
        let revived = store.intern(design("alpha", "r_reg[0]"));
        assert_eq!(revived, a, "an equal design revives its old handle");
        assert!(store.is_resident(a));
        assert_eq!(store.ref_count(a), 1);
        assert_eq!(store.design(a).name(), "alpha");
    }

    #[test]
    #[should_panic(expected = "was evicted")]
    fn accessing_an_evicted_design_panics_with_a_clear_message() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        store.release(a);
        store.evict_unreferenced();
        let _ = store.design(a);
    }

    #[test]
    fn budget_pressure_evicts_unreferenced_designs_lru_first() {
        // a budget of 0 forces every unreferenced design out immediately
        let mut store = DesignStore::with_memory_budget(0);
        let a = store.intern(design("alpha", "r_reg[0]"));
        assert!(store.is_resident(a), "live references keep a design resident over budget");
        let b = store.intern(design("beta", "r_reg[0]"));
        store.release(a);
        assert!(!store.is_resident(a), "a release under budget pressure evicts immediately");
        assert!(store.is_resident(b));
        store.release(b);
        assert!(!store.is_resident(b));
        assert_eq!(store.design_evictions(), 2);
    }

    #[test]
    fn peak_resident_bytes_survives_eviction() {
        let mut store = DesignStore::with_memory_budget(0);
        let a = store.intern(design("alpha", "r_reg[0]"));
        let pinned = store.resident_bytes();
        assert!(pinned > 0);
        assert_eq!(store.peak_resident_bytes(), pinned);
        store.release(a);
        assert_eq!(store.resident_bytes(), 0, "the budget evicted the released design");
        assert_eq!(
            store.peak_resident_bytes(),
            pinned,
            "the high-water mark remembers the pre-eviction residency"
        );
    }

    #[test]
    #[should_panic(expected = "cannot retain")]
    fn retaining_an_evicted_design_panics() {
        // a reference on an evicted slot would promise a design() lookup the
        // store cannot serve — retain must reject it, not silently pin it
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        store.release(a);
        store.evict_unreferenced();
        store.retain(a);
    }

    #[test]
    fn retain_keeps_a_design_resident_under_budget_pressure() {
        let mut store = DesignStore::with_memory_budget(0);
        let a = store.intern(design("alpha", "r_reg[0]"));
        store.retain(a);
        assert_eq!(store.release(a), 1);
        assert!(store.is_resident(a), "the retained reference still pins the design");
        assert_eq!(store.release(a), 0);
        assert!(!store.is_resident(a));
    }

    #[test]
    fn redundant_release_does_not_perturb_eviction_recency() {
        use netlist::HeapSize;
        // materialize the CSR views first so the byte accounting below
        // matches what intern() will record
        let build = |name| {
            let d = design(name, "r_reg[0]");
            d.connectivity();
            d
        };
        let (da, db, dc) = (build("alpha"), build("beta"), build("gamma"));
        // room for two of the three designs: interning the third must evict
        // exactly one unreferenced design
        let budget = da.heap_bytes() + db.heap_bytes() + dc.heap_bytes() - 1;
        let mut store = DesignStore::with_memory_budget(budget);
        let a = store.intern(da);
        let b = store.intern(db);
        store.release(a); // a is now the least-recently-used candidate
        store.release(b);
        assert_eq!(store.release(a), 0, "redundant release is a no-op");
        store.intern(dc);
        // a redundant release that refreshed recency would evict b here
        assert!(!store.is_resident(a), "the true LRU design is evicted");
        assert!(store.is_resident(b));
        assert_eq!(store.design_evictions(), 1);
    }

    #[test]
    fn eviction_log_records_name_bytes_and_order() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let b = store.intern(design("beta", "r_reg[0]"));
        let a_bytes = store.design_bytes_of(a);
        store.release(a);
        store.release(b);
        store.evict_unreferenced();
        let log: Vec<_> = store.eviction_log().cloned().collect();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].handle, a);
        assert_eq!(log[0].name, "alpha");
        assert_eq!(log[0].bytes, a_bytes);
        assert_eq!(log[1].name, "beta");
        assert!(log[0].at <= log[1].at);
        assert_eq!(store.design_bytes_of(a), 0, "evicted designs account zero bytes");
        // revival starts a fresh accounting but keeps the log
        store.intern(design("alpha", "r_reg[0]"));
        assert_eq!(store.design_bytes_of(a), a_bytes);
        assert_eq!(store.eviction_log().count(), 2);
    }

    #[test]
    fn pinned_bytes_track_referenced_designs_only() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let b = store.intern(design("beta", "r_reg[0]"));
        assert_eq!(store.pinned_design_bytes(), store.design_bytes());
        store.release(a);
        assert_eq!(
            store.pinned_design_bytes(),
            store.design_bytes_of(b),
            "an unreferenced design is reclaimable, not pinned"
        );
        store.release(b);
        assert_eq!(store.pinned_design_bytes(), 0);
        assert_eq!(store.design_bytes(), store.design_bytes_of(a) + store.design_bytes_of(b));
    }

    #[test]
    fn pure_geometry_edit_keeps_artifacts_warm() {
        use netlist::DesignEdit;
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let ram = store.design(a).find_cell("alpha/ram").unwrap();
        // warm both graphs
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        let before = store.artifacts().stats();
        assert_eq!((before.seq.misses, before.net.misses), (1, 1));

        let log = store
            .apply_edits(a, &[DesignEdit::ResizeCell { cell: ram, width: 300, height: 200 }])
            .unwrap();
        assert!(log.diff.is_pure_geometry());
        assert_eq!(store.design(a).cell(ram).width, 300, "the edit landed in place");

        // the artifact identity is unchanged: the next fetch is a pure hit
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        let after = store.artifacts().stats();
        assert_eq!(
            (after.seq.misses, after.net.misses),
            (1, 1),
            "a pure-geometry edit rebuilds zero Gnet/Gseq"
        );
        assert!(after.seq.hits > before.seq.hits);
        // the index was re-keyed: re-interning the edited design revives
        // the same handle instead of allocating a new identity
        let edited = store.design(a).clone();
        assert_eq!(store.intern(edited), a);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rewire_edit_drops_the_stale_artifacts() {
        use netlist::DesignEdit;
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let old_key = store.key(a).clone();
        let ram = store.design(a).find_cell("alpha/ram").unwrap();
        let flop = store.design(a).find_cell("r_reg[0]").unwrap();
        let net = store.design(a).find_net("n").unwrap();
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert!(store.artifacts().contains(ArtifactKind::SeqGraph, &old_key));

        let log = store
            .apply_edits(a, &[DesignEdit::RewireNet { net, driver: Some(ram), sinks: vec![flop] }])
            .unwrap();
        assert!(log.diff.wiring_changed());
        assert_ne!(store.key(a), &old_key, "the slot key follows the edited identity");
        assert!(
            !store.artifacts().contains(ArtifactKind::SeqGraph, &old_key),
            "a wiring edit purges the old identity's artifacts"
        );
        // the next fetch is a miss under the new identity
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert_eq!(store.artifacts().stats().seq.misses, 2);
        store.design(a).validate().unwrap();
    }

    #[test]
    fn editing_an_evicted_design_is_a_structured_error() {
        use netlist::DesignEdit;
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let ram = store.design(a).find_cell("alpha/ram").unwrap();
        store.release(a);
        store.evict_unreferenced();
        let err = store
            .apply_edits(a, &[DesignEdit::ResizeCell { cell: ram, width: 1, height: 1 }])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("evicted"), "unexpected message: {msg}");
    }

    #[test]
    fn rejected_edit_script_leaves_the_store_untouched() {
        use netlist::design::CellId;
        use netlist::DesignEdit;
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        let key = store.key(a).clone();
        let ram = store.design(a).find_cell("alpha/ram").unwrap();
        let err = store
            .apply_edits(
                a,
                &[
                    DesignEdit::ResizeCell { cell: ram, width: 5, height: 5 },
                    DesignEdit::ResizeCell { cell: CellId(999), width: 1, height: 1 },
                ],
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown cell"));
        assert_eq!(store.key(a), &key);
        assert_eq!(store.design(a).cell(ram).width, 200, "nothing was applied");
    }

    fn spill_scratch(test: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hidap-store-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn evicted_csr_spills_and_revives_across_store_lifetimes() {
        let dir = spill_scratch("csr-revive");
        let mut store = DesignStore::new().with_spill_dir(&dir);
        let a = store.intern(design("alpha", "r_reg[0]"));
        let fp = store.design(a).connectivity().fingerprint();
        store.release(a);
        store.evict_unreferenced();
        assert_eq!(store.csr_spills(), 1, "eviction demotes the CSR view to disk");

        // same store: re-interning revives the CSR from disk, bit-identical
        let d = design("alpha", "r_reg[0]");
        assert!(d.cached_connectivity().is_none());
        let revived = store.intern(d);
        assert_eq!(revived, a);
        assert_eq!(store.csr_revives(), 1, "re-intern deserializes instead of rebuilding");
        assert_eq!(store.design(a).connectivity().fingerprint(), fp);

        // fresh store over the same directory: the daemon-restart case
        let mut store2 = DesignStore::new().with_spill_dir(&dir);
        let b = store2.intern(design("alpha", "r_reg[0]"));
        assert_eq!(store2.csr_revives(), 1);
        assert_eq!(store2.design(b).connectivity().fingerprint(), fp);
        assert_eq!(store2.key(b), store.key(a), "revived identity keys match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_csr_spill_degrades_to_a_rebuild() {
        let dir = spill_scratch("csr-corrupt");
        let mut store = DesignStore::new().with_spill_dir(&dir);
        let a = store.intern(design("alpha", "r_reg[0]"));
        let fp = store.design(a).connectivity().fingerprint();
        store.release(a);
        store.evict_unreferenced();
        // truncate every spill file in the directory
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            let bytes = std::fs::read(entry.path()).unwrap();
            std::fs::write(entry.path(), &bytes[..bytes.len() / 2]).unwrap();
        }
        let b = store.intern(design("alpha", "r_reg[0]"));
        assert_eq!(b, a);
        assert_eq!(store.csr_revives(), 0, "a corrupt file is a plain rebuild, not an error");
        assert_eq!(store.design(a).connectivity().fingerprint(), fp, "the rebuild is identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_a_spill_dir_nothing_touches_disk_counters() {
        let mut store = DesignStore::new();
        let a = store.intern(design("alpha", "r_reg[0]"));
        store.release(a);
        store.evict_unreferenced();
        store.intern(design("alpha", "r_reg[0]"));
        assert_eq!((store.csr_spills(), store.csr_revives()), (0, 0));
        assert!(store.spill_tier().is_none());
    }

    #[test]
    fn resident_bytes_account_designs_and_artifacts() {
        let mut store = DesignStore::new();
        assert_eq!(store.resident_bytes(), 0);
        let a = store.intern(design("alpha", "r_reg[0]"));
        let designs_only = store.resident_bytes();
        assert!(designs_only > 0);
        assert_eq!(designs_only, store.design_bytes());
        store.context().evaluator(eval::EvalConfig::standard()).seq_graph(store.design(a));
        assert!(store.resident_bytes() > designs_only, "artifacts add to the total");
        store.release(a);
        store.evict_unreferenced();
        assert_eq!(store.resident_bytes(), 0, "eviction returns the accounting to zero");
    }
}
