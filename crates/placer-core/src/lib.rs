//! The unified macro-placement engine API.
//!
//! Every placement flow in this workspace — the paper's HiDaP flow, the
//! IndEDA-style flat baseline and the handFP oracle — plugs into one engine
//! interface instead of exposing its own ad-hoc entry point:
//!
//! * [`Placer`] — the flow trait: `place(&PlaceRequest, &mut PlaceContext)`,
//! * [`PlaceRequest`] / [`PlaceOutcome`] — what goes in (design, die, seed,
//!   effort, constraints) and what comes out (placement, per-stage timings,
//!   quality metrics),
//! * [`FlowObserver`] — typed stage events (hierarchy built, shape curves,
//!   per-level floorplans, flipping, legalization) for progress reporting,
//! * [`PlaceContext`] — cancellation tokens and deadlines threaded through
//!   every flow,
//! * [`BatchRunner`] — parallel seed×λ grid execution with deterministic
//!   per-run RNG derivation and a pluggable winner [`Objective`],
//! * [`FlowRegistry`] — string-keyed flow lookup so front ends resolve
//!   `--flow <name>` without hard-coding flow types,
//! * [`DesignStore`] / [`PlacementService`] — the multi-design service
//!   layer: designs interned behind cheap, refcounted [`DesignHandle`]s
//!   with their derived artifacts (CSR connectivity, `Gnet`, `Gseq`) owned
//!   centrally in a byte-budgeted [`eval::ArtifactCache`], and a queue of
//!   heterogeneous [`PlaceJob`]s (designs × flows × seed/λ grids) drained
//!   with per-job observers, cancellation and deterministic winners.
//!
//! # Quick start
//!
//! ```
//! use hidap::{HidapConfig, HidapFlow};
//! use netlist::design::DesignBuilder;
//! use placer_core::{BatchGrid, BatchRunner, PlaceContext, PlaceRequest, Placer};
//!
//! // Two RAMs exchanging data through a register pipeline.
//! let mut b = DesignBuilder::new("mini");
//! let ram0 = b.add_macro("u_a/ram0", "RAM", 200, 150, "u_a");
//! let ram1 = b.add_macro("u_b/ram1", "RAM", 200, 150, "u_b");
//! for i in 0..8 {
//!     let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
//!     let n0 = b.add_net(format!("n0_{i}"));
//!     let n1 = b.add_net(format!("n1_{i}"));
//!     b.connect_driver(n0, ram0);
//!     b.connect_sink(n0, f);
//!     b.connect_driver(n1, f);
//!     b.connect_sink(n1, ram1);
//! }
//! b.set_die(geometry::Rect::new(0, 0, 1000, 800));
//! let design = b.build();
//!
//! // One run through the Placer trait.
//! let placer = HidapFlow::new(HidapConfig::fast());
//! let request = PlaceRequest::new(&design).with_seed(7).with_lambda(0.5);
//! let outcome = placer.place(&request, &mut PlaceContext::new())?;
//! assert_eq!(outcome.placement.macros.len(), 2);
//! assert!(!outcome.stage_timings.is_empty());
//!
//! // A parallel seed×λ sweep picking the lowest-wirelength winner.
//! let grid = BatchGrid::new(vec![1, 2], vec![0.2, 0.8]);
//! let batch = BatchRunner::new().with_jobs(2);
//! let best = batch.run(&placer, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())?;
//! assert!(best.winner.placement.is_legal(&design));
//! # Ok::<(), placer_core::PlaceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]
#![deny(clippy::unwrap_used)]

pub mod batch;
pub mod context;
pub mod error;
pub mod flows;
pub mod observer;
pub mod registry;
pub mod request;
pub mod scheduler;
pub mod seeds;
pub mod service;
pub mod store;

pub use batch::{BatchGrid, BatchOutcome, BatchRunner, Objective, RunSummary, WirelengthObjective};
pub use context::{CancelToken, PlaceContext};
pub use error::PlaceError;
pub use flows::builtin_registry;
pub use observer::{CollectingObserver, FlowObserver, StageEvent};
pub use registry::FlowRegistry;
pub use request::{EffortLevel, PlaceOutcome, PlaceRequest, Placer, StageTiming};
pub use scheduler::{ClientId, Scheduler};
pub use seeds::WarmSeed;
pub use service::{
    JobId, JobResult, JobState, PlaceJob, PlacementService, ReplaceSpec, ServiceStats,
};
pub use store::{DesignHandle, DesignStore, EvictionRecord};
