//! The engine's request/outcome types and the [`Placer`] trait.

use crate::context::PlaceContext;
use crate::error::PlaceError;
use eval::{CellPlacement, EvalConfig, PlacementMetrics};
use geometry::Rect;
use hidap::MacroPlacement;
use netlist::design::Design;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Compute-budget tiers shared by every flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffortLevel {
    /// Reduced effort for CI and quick experiments.
    Fast,
    /// Each flow's default effort.
    Default,
    /// Paper-style high effort.
    High,
}

impl EffortLevel {
    /// Parses the CLI `--effort` value.
    pub fn parse(s: &str) -> Option<EffortLevel> {
        match s {
            "fast" => Some(EffortLevel::Fast),
            "default" => Some(EffortLevel::Default),
            "high" => Some(EffortLevel::High),
            _ => None,
        }
    }
}

/// What to place and under which knobs.
///
/// A request is flow-agnostic: it carries the design, an optional die
/// override, the RNG seed, an optional effort tier (when `None`, the flow
/// uses whatever configuration it was constructed with), an optional λ
/// constraint, and optionally which evaluation to run on the result.
#[derive(Clone)]
pub struct PlaceRequest<'a> {
    /// The design to place.
    pub design: &'a Design,
    /// Overrides the design's die rectangle when set.
    pub die: Option<Rect>,
    /// RNG seed; every flow must be deterministic for a fixed seed.
    pub seed: u64,
    /// Effort tier; `None` keeps the flow's configured effort.
    pub effort: Option<EffortLevel>,
    /// λ blend between block flow and macro flow; `None` keeps the flow's
    /// configured value (flows without a λ knob ignore it).
    pub lambda: Option<f64>,
    /// When set, the outcome carries [`PlaceOutcome::metrics`] evaluated with
    /// this configuration.
    pub evaluate: Option<EvalConfig>,
    /// Warm-start seed: a previous macro placement of (an earlier revision
    /// of) the same design. Flows that support incremental re-placement
    /// (hidap) skip their global stages and only re-legalize from this seed;
    /// flows without a warm path ignore it.
    pub warm_start: Option<&'a MacroPlacement>,
    /// Warm-start seed for the evaluation placer: the previous standard-cell
    /// placement (available as `PlacementMetrics::cell_placement` on the
    /// prior outcome). Only consulted when [`PlaceRequest::evaluate`] is
    /// set; the Gauss–Seidel solver then starts from these positions and
    /// stops at the first non-improving sweep.
    pub warm_cells: Option<&'a CellPlacement>,
}

impl<'a> PlaceRequest<'a> {
    /// A request with seed 1 and every knob left at the flow's default.
    pub fn new(design: &'a Design) -> Self {
        Self {
            design,
            die: None,
            seed: 1,
            effort: None,
            lambda: None,
            evaluate: None,
            warm_start: None,
            warm_cells: None,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the effort tier.
    pub fn with_effort(mut self, effort: EffortLevel) -> Self {
        self.effort = Some(effort);
        self
    }

    /// Sets the λ constraint.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Overrides the die rectangle.
    pub fn with_die(mut self, die: Rect) -> Self {
        self.die = Some(die);
        self
    }

    /// Requests metrics evaluation of the result.
    pub fn with_evaluation(mut self, eval: EvalConfig) -> Self {
        self.evaluate = Some(eval);
        self
    }

    /// Seeds the flow from a previous macro placement (the ECO warm-start
    /// path — see `docs/ECO.md`).
    pub fn with_warm_start(mut self, placement: &'a MacroPlacement) -> Self {
        self.warm_start = Some(placement);
        self
    }

    /// Seeds the evaluation placer from a previous standard-cell placement.
    pub fn with_warm_cells(mut self, cells: &'a CellPlacement) -> Self {
        self.warm_cells = Some(cells);
        self
    }

    /// Validates the request-level constraints shared by all flows.
    pub fn validate(&self) -> Result<(), PlaceError> {
        if let Some(lambda) = self.lambda {
            if !(0.0..=1.0).contains(&lambda) {
                return Err(PlaceError::InvalidRequest(format!(
                    "lambda must be in [0, 1], got {lambda}"
                )));
            }
        }
        Ok(())
    }

    /// The design with the die override applied (clones only when needed).
    pub fn effective_design(&self) -> Cow<'a, Design> {
        match self.die {
            Some(die) if die != self.design.die() => {
                let mut design = self.design.clone();
                design.set_die(die);
                Cow::Owned(design)
            }
            _ => Cow::Borrowed(self.design),
        }
    }
}

/// Wall-clock duration of one flow stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`hierarchy`, `shape_curves`, `floorplan`, `flipping`,
    /// `legalize`, `evaluate`, ...).
    pub stage: String,
    /// Seconds spent in the stage.
    pub seconds: f64,
}

/// The result of one placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOutcome {
    /// The macro placement.
    pub placement: MacroPlacement,
    /// Name of the flow that produced it.
    pub flow: String,
    /// Seed the run used.
    pub seed: u64,
    /// λ the run used, when the flow has a λ knob.
    pub lambda: Option<f64>,
    /// Per-stage wall-clock timings, in stage order.
    pub stage_timings: Vec<StageTiming>,
    /// Total wall-clock seconds of the run (excluding evaluation).
    pub wall_s: f64,
    /// Quality metrics, present when the request asked for evaluation.
    pub metrics: Option<PlacementMetrics>,
}

impl PlaceOutcome {
    /// Seconds spent in a named stage, when that stage was recorded.
    pub fn stage_seconds(&self, stage: &str) -> Option<f64> {
        self.stage_timings.iter().find(|t| t.stage == stage).map(|t| t.seconds)
    }
}

/// A macro-placement flow behind the unified engine API.
///
/// Implementations must be deterministic for a fixed request and must poll
/// [`PlaceContext::interrupted`] at stage boundaries so cancellation and
/// deadlines take effect. `Send + Sync` is required so [`crate::BatchRunner`]
/// can fan one placer out across worker threads.
pub trait Placer: Send + Sync {
    /// The flow's registry name (`hidap`, `indeda`, `handfp`, ...).
    fn name(&self) -> &str;

    /// Whether the flow has a λ knob. Sweep front ends collapse the λ axis
    /// of a grid for flows without one (every λ would produce the same
    /// placement).
    fn supports_lambda(&self) -> bool {
        true
    }

    /// Whether the flow is itself a multi-run composition (like the handFP
    /// oracle). Sweeping a composite flow again multiplies its entire
    /// internal sweep per grid cell, so front ends reject that.
    fn is_composite(&self) -> bool {
        false
    }

    /// Runs the flow on one request.
    fn place(
        &self,
        req: &PlaceRequest<'_>,
        ctx: &mut PlaceContext,
    ) -> Result<PlaceOutcome, PlaceError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_knobs() {
        let design = netlist::design::DesignBuilder::new("t").build();
        let req =
            PlaceRequest::new(&design).with_seed(9).with_effort(EffortLevel::Fast).with_lambda(0.3);
        assert_eq!(req.seed, 9);
        assert_eq!(req.effort, Some(EffortLevel::Fast));
        assert_eq!(req.lambda, Some(0.3));
        assert!(req.validate().is_ok());
    }

    #[test]
    fn out_of_range_lambda_is_invalid() {
        let design = netlist::design::DesignBuilder::new("t").build();
        let req = PlaceRequest::new(&design).with_lambda(1.5);
        assert!(matches!(req.validate(), Err(PlaceError::InvalidRequest(_))));
    }

    #[test]
    fn die_override_clones_lazily() {
        let mut b = netlist::design::DesignBuilder::new("t");
        b.set_die(Rect::new(0, 0, 100, 100));
        let design = b.build();
        let same = PlaceRequest::new(&design).with_die(Rect::new(0, 0, 100, 100));
        assert!(matches!(same.effective_design(), Cow::Borrowed(_)));
        let other = PlaceRequest::new(&design).with_die(Rect::new(0, 0, 200, 200));
        let effective = other.effective_design();
        assert!(matches!(effective, Cow::Owned(_)));
        assert_eq!(effective.die(), Rect::new(0, 0, 200, 200));
    }

    #[test]
    fn effort_parsing() {
        assert_eq!(EffortLevel::parse("fast"), Some(EffortLevel::Fast));
        assert_eq!(EffortLevel::parse("default"), Some(EffortLevel::Default));
        assert_eq!(EffortLevel::parse("high"), Some(EffortLevel::High));
        assert_eq!(EffortLevel::parse("paper"), None);
    }
}
