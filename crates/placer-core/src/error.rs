//! The engine error type.

use hidap::HidapError;
use std::fmt;

/// An error produced by the placement engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The run was cancelled through its [`crate::CancelToken`].
    Cancelled,
    /// The run exceeded the deadline set on its [`crate::PlaceContext`].
    DeadlineExceeded,
    /// The request is malformed (bad λ, empty grid, ...).
    InvalidRequest(String),
    /// Admission control rejected a submit: the referenced (unevictable)
    /// designs already exceed the store's memory budget, so accepting more
    /// work against them could only grow the resident set further. The
    /// remedy is in the message: release designs that are no longer needed,
    /// or raise the budget.
    AdmissionRejected {
        /// Handle index of the design the rejected job named.
        design: u32,
        /// Bytes pinned by referenced resident designs (the unevictable
        /// floor of the store's accounting).
        pinned_bytes: usize,
        /// The store's configured total-byte budget.
        budget_bytes: usize,
    },
    /// A client hit its per-client quota of queued jobs.
    QuotaExceeded {
        /// The client that submitted the job.
        client: String,
        /// The client's configured quota.
        quota: usize,
    },
    /// The requested flow name is not registered.
    UnknownFlow {
        /// The name that failed to resolve.
        requested: String,
        /// The names the registry knows about.
        known: Vec<String>,
    },
    /// The underlying flow failed.
    Flow(HidapError),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Cancelled => write!(f, "placement run was cancelled"),
            PlaceError::DeadlineExceeded => write!(f, "placement run exceeded its deadline"),
            PlaceError::InvalidRequest(msg) => write!(f, "invalid placement request: {msg}"),
            PlaceError::AdmissionRejected { design, pinned_bytes, budget_bytes } => write!(
                f,
                "admission rejected for design {design}: referenced designs pin {pinned_bytes} \
                 bytes, over the {budget_bytes}-byte memory budget; release designs you no \
                 longer need (or raise the budget) and resubmit"
            ),
            PlaceError::QuotaExceeded { client, quota } => write!(
                f,
                "client '{client}' already has {quota} queued jobs (its quota); drain or cancel \
                 before submitting more"
            ),
            PlaceError::UnknownFlow { requested, known } => {
                write!(f, "unknown flow '{requested}' (known flows: {})", known.join(", "))
            }
            PlaceError::Flow(e) => write!(f, "flow failed: {e}"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl From<HidapError> for PlaceError {
    fn from(e: HidapError) -> Self {
        match e {
            HidapError::Cancelled => PlaceError::Cancelled,
            other => PlaceError::Flow(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlaceError::Cancelled.to_string().contains("cancelled"));
        assert!(PlaceError::DeadlineExceeded.to_string().contains("deadline"));
        let e = PlaceError::UnknownFlow { requested: "x".into(), known: vec!["hidap".into()] };
        assert!(e.to_string().contains("hidap"));
        let e = PlaceError::AdmissionRejected { design: 3, pinned_bytes: 900, budget_bytes: 512 };
        assert!(e.to_string().contains("design 3"), "{e}");
        assert!(e.to_string().contains("release designs"), "the remedy is named: {e}");
        let e = PlaceError::QuotaExceeded { client: "alice".into(), quota: 2 };
        assert!(e.to_string().contains("alice"), "{e}");
        assert!(e.to_string().contains("drain or cancel"), "the remedy is named: {e}");
        assert!(PlaceError::from(HidapError::EmptyDie).to_string().contains("empty die"));
    }

    #[test]
    fn hidap_cancellation_maps_to_engine_cancellation() {
        assert_eq!(PlaceError::from(HidapError::Cancelled), PlaceError::Cancelled);
    }
}
