//! The engine error type.

use hidap::HidapError;
use std::fmt;

/// An error produced by the placement engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The run was cancelled through its [`crate::CancelToken`].
    Cancelled,
    /// The run exceeded the deadline set on its [`crate::PlaceContext`].
    DeadlineExceeded,
    /// The request is malformed (bad λ, empty grid, ...).
    InvalidRequest(String),
    /// The requested flow name is not registered.
    UnknownFlow {
        /// The name that failed to resolve.
        requested: String,
        /// The names the registry knows about.
        known: Vec<String>,
    },
    /// The underlying flow failed.
    Flow(HidapError),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Cancelled => write!(f, "placement run was cancelled"),
            PlaceError::DeadlineExceeded => write!(f, "placement run exceeded its deadline"),
            PlaceError::InvalidRequest(msg) => write!(f, "invalid placement request: {msg}"),
            PlaceError::UnknownFlow { requested, known } => {
                write!(f, "unknown flow '{requested}' (known flows: {})", known.join(", "))
            }
            PlaceError::Flow(e) => write!(f, "flow failed: {e}"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl From<HidapError> for PlaceError {
    fn from(e: HidapError) -> Self {
        match e {
            HidapError::Cancelled => PlaceError::Cancelled,
            other => PlaceError::Flow(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlaceError::Cancelled.to_string().contains("cancelled"));
        assert!(PlaceError::DeadlineExceeded.to_string().contains("deadline"));
        let e = PlaceError::UnknownFlow { requested: "x".into(), known: vec!["hidap".into()] };
        assert!(e.to_string().contains("hidap"));
        assert!(PlaceError::from(HidapError::EmptyDie).to_string().contains("empty die"));
    }

    #[test]
    fn hidap_cancellation_maps_to_engine_cancellation() {
        assert_eq!(PlaceError::from(HidapError::Cancelled), PlaceError::Cancelled);
    }
}
