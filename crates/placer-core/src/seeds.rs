//! Warm-start seed persistence: the spill-tier face of `replace`.
//!
//! A replace job warm-starts from its base job's outcome. Within one service
//! lifetime the base result is held in memory; when a spill directory is
//! configured ([`crate::PlacementService::with_spill_dir`]) the service also
//! persists every successful job's winning placement as a **seed file** in
//! the same framed format the artifact spill tier uses ([`eval::SpillTier`],
//! stem `seed-<fingerprint>`), keyed by the design identity
//! ([`eval::DesignKey::fingerprint`]) folded with the design's geometry
//! fingerprint. After a daemon restart, a replace job whose base result is
//! gone — a [`crate::JobId`] from the previous incarnation, or one whose
//! result was already taken — revives the seed from disk and warm-starts
//! exactly as it would have from the held result.
//!
//! The payload is codec-encoded ([`netlist::codec`]): the winning macro
//! placement (locations, orientations, top-level block rectangles) plus the
//! standard-cell placement when the base job evaluated. Decoding is
//! truncation-tolerant — any malformed payload reads as absent and the
//! replace falls back to its structured dependency error.

use eval::{CellPlacement, DesignKey};
use geometry::{Orientation, Point, Rect};
use hidap::{MacroPlacement, PlacedMacro};
use netlist::codec::{put_i64, put_str, put_u32, put_u64, put_u8, Reader};
use netlist::dense::DenseMap;
use netlist::design::CellId;
use netlist::Fnv1a;

/// A revivable warm-start: what [`crate::service::PlacementService`] needs
/// from a base job to warm a replace — no more, no less.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSeed {
    /// The base job's winning macro placement.
    pub placement: MacroPlacement,
    /// The base job's standard-cell placement, when it ran with evaluation
    /// (seeds the warm evaluation solver).
    pub cells: Option<CellPlacement>,
}

/// The content address of a design's seed file: the design identity
/// fingerprint folded with its geometry fingerprint. Two designs share a
/// seed exactly when they would intern to the same store slot.
pub fn seed_fingerprint(key: &DesignKey, geometry: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(key.fingerprint());
    h.write_sep();
    h.write_u64(geometry);
    h.finish()
}

/// The spill-file stem a seed fingerprint files under.
pub fn seed_stem(fingerprint: u64) -> String {
    format!("seed-{fingerprint:016x}")
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_i64(out, p.x);
    put_i64(out, p.y);
}

fn take_point(r: &mut Reader<'_>) -> Option<Point> {
    Some(Point::new(r.take_i64()?, r.take_i64()?))
}

fn orientation_tag(o: Orientation) -> u8 {
    // Orientation::ALL is the canonical order; a macro always matches.
    Orientation::ALL.iter().position(|&x| x == o).unwrap_or(0) as u8
}

/// Encodes a warm seed into a spill payload.
pub fn encode_seed(seed: &WarmSeed) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, seed.placement.macros.len() as u64);
    for m in &seed.placement.macros {
        put_u32(&mut out, m.cell.0);
        put_point(&mut out, m.location);
        put_u8(&mut out, orientation_tag(m.orientation));
    }
    put_u64(&mut out, seed.placement.top_blocks.len() as u64);
    for (name, rect) in &seed.placement.top_blocks {
        put_str(&mut out, name);
        put_i64(&mut out, rect.llx);
        put_i64(&mut out, rect.lly);
        put_i64(&mut out, rect.urx);
        put_i64(&mut out, rect.ury);
    }
    match &seed.cells {
        None => put_u8(&mut out, 0),
        Some(cells) => {
            put_u8(&mut out, 1);
            put_u64(&mut out, cells.positions.len() as u64);
            for slot in cells.positions.as_slice() {
                match slot {
                    None => put_u8(&mut out, 0),
                    Some(p) => {
                        put_u8(&mut out, 1);
                        put_point(&mut out, *p);
                    }
                }
            }
        }
    }
    out
}

/// Decodes a spill payload back into a warm seed. `None` on any truncation,
/// trailing garbage, or out-of-range tag — the caller degrades to running
/// without the seed.
pub fn decode_seed(bytes: &[u8]) -> Option<WarmSeed> {
    let mut r = Reader::new(bytes);
    let num_macros = r.take_len()?;
    // every macro record is at least 4 + 16 + 1 bytes: reject length bombs
    // before sizing the vector
    if r.remaining() / 21 < num_macros {
        return None;
    }
    let mut macros = Vec::with_capacity(num_macros);
    for _ in 0..num_macros {
        let cell = CellId(r.take_u32()?);
        let location = take_point(&mut r)?;
        let orientation = *Orientation::ALL.get(usize::from(r.take_u8()?))?;
        macros.push(PlacedMacro { cell, location, orientation });
    }
    let num_blocks = r.take_len()?;
    if r.remaining() / 40 < num_blocks {
        return None;
    }
    let mut top_blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let name = r.take_str()?;
        let (llx, lly) = (r.take_i64()?, r.take_i64()?);
        let (urx, ury) = (r.take_i64()?, r.take_i64()?);
        top_blocks.push((name, Rect { llx, lly, urx, ury }));
    }
    let cells = match r.take_u8()? {
        0 => None,
        1 => {
            let num_cells = r.take_len()?;
            if r.remaining() < num_cells {
                return None;
            }
            let mut positions = Vec::with_capacity(num_cells);
            for _ in 0..num_cells {
                positions.push(match r.take_u8()? {
                    0 => None,
                    1 => Some(take_point(&mut r)?),
                    _ => return None,
                });
            }
            Some(CellPlacement { positions: DenseMap::from_vec(positions) })
        }
        _ => return None,
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(WarmSeed { placement: MacroPlacement { macros, top_blocks }, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(with_cells: bool) -> WarmSeed {
        let placement = MacroPlacement {
            macros: vec![
                PlacedMacro {
                    cell: CellId(3),
                    location: Point::new(-40, 1200),
                    orientation: Orientation::FS,
                },
                PlacedMacro {
                    cell: CellId(9),
                    location: Point::new(0, 0),
                    orientation: Orientation::N,
                },
            ],
            top_blocks: vec![("u_core".to_string(), Rect::new(0, 0, 500, 400))],
        };
        let cells = with_cells.then(|| {
            let mut c = CellPlacement::with_num_cells(4);
            c.positions.insert(CellId(1), Some(Point::new(17, -2)));
            c.positions.insert(CellId(3), Some(Point::new(250, 199)));
            c
        });
        WarmSeed { placement, cells }
    }

    #[test]
    fn seed_round_trips_with_and_without_cells() {
        for with_cells in [false, true] {
            let seed = sample(with_cells);
            let bytes = encode_seed(&seed);
            assert_eq!(decode_seed(&bytes), Some(seed));
        }
    }

    #[test]
    fn truncated_and_padded_seed_payloads_read_as_absent() {
        let bytes = encode_seed(&sample(true));
        for cut in 0..bytes.len() {
            assert_eq!(decode_seed(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_seed(&padded), None, "trailing garbage");
    }

    #[test]
    fn out_of_range_tags_read_as_absent() {
        let mut bad_orient = encode_seed(&sample(false));
        // last macro byte before the (empty) block and cells sections:
        // macros len (8) + 2 × (4 + 16 + 1) = 50; orientation of macro 1 is
        // at offset 49
        bad_orient[49] = 8;
        assert_eq!(decode_seed(&bad_orient), None);

        let mut bad_cells = encode_seed(&sample(false));
        let last = bad_cells.len() - 1;
        bad_cells[last] = 2;
        assert_eq!(decode_seed(&bad_cells), None);
    }

    #[test]
    fn seed_fingerprint_separates_identity_and_geometry() {
        use netlist::design::DesignBuilder;
        let build = |die_w| {
            let mut b = DesignBuilder::new("fp");
            let m = b.add_macro("u/ram", "RAM", 100, 80, "u");
            let f = b.add_flop("r_reg[0]", "");
            let n = b.add_net("n");
            b.connect_driver(n, f);
            b.connect_sink(n, m);
            b.set_die(geometry::Rect::new(0, 0, die_w, 500));
            b.build()
        };
        let (a, b) = (build(1000), build(2000));
        let (ka, kb) = (DesignKey::of(&a), DesignKey::of(&b));
        assert_eq!(ka, kb, "geometry is not part of the identity key");
        let fa = seed_fingerprint(&ka, a.geometry_fingerprint());
        let fb = seed_fingerprint(&kb, b.geometry_fingerprint());
        assert_ne!(fa, fb, "the seed address covers the geometry half");
        assert_eq!(fa, seed_fingerprint(&ka, a.geometry_fingerprint()));
    }
}
