//! The production scheduling layer: admission control and per-client quotas
//! over a [`PlacementService`].
//!
//! A [`Scheduler`] wraps a service with the two policies a long-lived,
//! multi-user deployment needs before it can take untrusted traffic:
//!
//! * **admission control** — a [`Scheduler::submit`] is rejected with
//!   [`PlaceError::AdmissionRejected`] (naming the remedy) when the store's
//!   *pinned* design bytes — the unevictable floor of referenced resident
//!   designs — already exceed the memory budget. Accepting more work against
//!   a store that budget enforcement cannot shrink would only grow the
//!   resident set; the client is told to release designs (or raise the
//!   budget) and resubmit.
//! * **per-client quotas** — clients register through
//!   [`Scheduler::register_client`] and every submit is charged against the
//!   client's quota of *queued* jobs; the quota frees as the queue drains.
//!   Over quota, the submit is rejected with [`PlaceError::QuotaExceeded`].
//!
//! Both policies are pure functions of the scheduler's own state — no
//! clocks, no sampling — so the same submission script always produces the
//! same accept/reject decisions, and (through the service's priority-ordered
//! drain) the same execution and event order.
//!
//! # Example
//!
//! ```
//! use netlist::design::DesignBuilder;
//! use placer_core::{PlaceJob, Scheduler};
//!
//! let mut b = DesignBuilder::new("mini");
//! let ram0 = b.add_macro("u_a/ram0", "RAM", 200, 150, "u_a");
//! let ram1 = b.add_macro("u_b/ram1", "RAM", 200, 150, "u_b");
//! for i in 0..8 {
//!     let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
//!     let n0 = b.add_net(format!("n0_{i}"));
//!     let n1 = b.add_net(format!("n1_{i}"));
//!     b.connect_driver(n0, ram0);
//!     b.connect_sink(n0, f);
//!     b.connect_driver(n1, f);
//!     b.connect_sink(n1, ram1);
//! }
//! b.set_die(geometry::Rect::new(0, 0, 1000, 800));
//!
//! let mut sched = Scheduler::new(placer_core::builtin_registry());
//! let client = sched.register_client("ci");
//! let design = sched.service_mut().intern(b.build());
//! let job = sched.submit(client, PlaceJob::new(design, "hidap")).unwrap();
//! sched.drain();
//! assert!(sched.take_result(job).unwrap().is_ok());
//! ```

use crate::error::PlaceError;
use crate::registry::FlowRegistry;
use crate::service::{JobId, JobResult, PlaceJob, PlacementService};
use std::collections::HashMap;

/// Identifier of a registered client, unique within its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

/// Per-client bookkeeping: the display name (for error messages) and the
/// ids of the client's still-queued jobs (its quota charge).
#[derive(Debug, Clone)]
struct ClientSlot {
    name: String,
    queued: Vec<JobId>,
}

/// Admission control and quotas over a [`PlacementService`]. See the
/// [module docs](crate::scheduler).
pub struct Scheduler {
    service: PlacementService,
    clients: Vec<ClientSlot>,
    /// Which client submitted each job, for quota release on drain/cancel.
    owners: HashMap<JobId, ClientId>,
    quota: usize,
}

impl Scheduler {
    /// Default per-client quota of queued jobs.
    pub const DEFAULT_QUOTA: usize = 32;

    /// A scheduler over a fresh service (unbounded store).
    pub fn new(registry: FlowRegistry) -> Self {
        Self::with_service(PlacementService::new(registry))
    }

    /// A scheduler over an existing service (e.g. one whose store has a
    /// memory budget — without one, admission control never rejects).
    pub fn with_service(service: PlacementService) -> Self {
        Self { service, clients: Vec::new(), owners: HashMap::new(), quota: Self::DEFAULT_QUOTA }
    }

    /// Sets the per-client quota of queued jobs (default
    /// [`Scheduler::DEFAULT_QUOTA`]).
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = quota;
        self
    }

    /// The per-client quota of queued jobs.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Registers a client and returns its id. Names are display-only (they
    /// appear in quota errors); two clients may share one.
    pub fn register_client(&mut self, name: impl Into<String>) -> ClientId {
        let id = ClientId(self.clients.len() as u64);
        self.clients.push(ClientSlot { name: name.into(), queued: Vec::new() });
        id
    }

    /// Jobs the client currently has queued (its quota charge). An id that
    /// was never registered has nothing queued.
    pub fn client_queued(&self, client: ClientId) -> usize {
        self.clients.get(client.0 as usize).map_or(0, |slot| slot.queued.len())
    }

    /// The wrapped service, for introspection ([`PlacementService::stats`],
    /// [`PlacementService::job_state`], the store).
    pub fn service(&self) -> &PlacementService {
        &self.service
    }

    /// Mutable access to the wrapped service (interning and releasing
    /// designs goes through here — admission control gates *work*, not
    /// residency; the store's own budget governs residency).
    pub fn service_mut(&mut self) -> &mut PlacementService {
        &mut self.service
    }

    /// Submits a job on behalf of a client, applying both policies:
    ///
    /// 1. quota — the client must have fewer than [`Scheduler::quota`] jobs
    ///    queued, else [`PlaceError::QuotaExceeded`];
    /// 2. admission — the store's [`crate::DesignStore::pinned_design_bytes`] must
    ///    not exceed its memory budget, else
    ///    [`PlaceError::AdmissionRejected`] naming the job's design and the
    ///    remedy. (A store without a budget admits everything.)
    ///
    /// An accepted job is queued on the service with its priority intact.
    pub fn submit(&mut self, client: ClientId, job: PlaceJob) -> Result<JobId, PlaceError> {
        let slot = self.clients.get(client.0 as usize).ok_or_else(|| {
            PlaceError::InvalidRequest(format!("unregistered client id {}", client.0))
        })?;
        if slot.queued.len() >= self.quota {
            return Err(PlaceError::QuotaExceeded { client: slot.name.clone(), quota: self.quota });
        }
        if let Some(budget) = self.service.store().memory_budget() {
            let pinned = self.service.store().pinned_design_bytes();
            if pinned > budget {
                return Err(PlaceError::AdmissionRejected {
                    design: job.design.0,
                    pinned_bytes: pinned,
                    budget_bytes: budget,
                });
            }
        }
        let id = self.service.submit(job);
        if let Some(slot) = self.clients.get_mut(client.0 as usize) {
            slot.queued.push(id);
        }
        self.owners.insert(id, client);
        Ok(id)
    }

    /// Cancels a still-queued job, freeing its quota charge. Returns `false`
    /// (changing nothing) when the job is not in the queue.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if !self.service.cancel_queued(id) {
            return false;
        }
        self.uncharge(id);
        true
    }

    /// Drains the service queue (priority order) and frees every quota
    /// charge. Returns the number of jobs that ran.
    pub fn drain(&mut self) -> usize {
        let ran = self.service.run_all();
        for slot in &mut self.clients {
            slot.queued.clear();
        }
        self.owners.clear();
        ran
    }

    /// Removes and returns a job's result (see
    /// [`PlacementService::take_result`] for the exact contract).
    pub fn take_result(&mut self, id: JobId) -> Option<Result<JobResult, PlaceError>> {
        self.service.take_result(id)
    }

    /// Removes a drained job's quota charge.
    fn uncharge(&mut self, id: JobId) {
        if let Some(client) = self.owners.remove(&id) {
            if let Some(slot) = self.clients.get_mut(client.0 as usize) {
                slot.queued.retain(|&qid| qid != id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::builtin_registry;
    use crate::request::EffortLevel;
    use crate::store::DesignStore;
    use geometry::Rect;
    use netlist::design::{Design, DesignBuilder};
    use netlist::HeapSize;

    fn pipeline_design(name: &str, regs: usize) -> Design {
        let mut b = DesignBuilder::new(name);
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..regs {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    fn fast_job(design: crate::DesignHandle) -> PlaceJob {
        PlaceJob::new(design, "hidap").with_effort(EffortLevel::Fast)
    }

    #[test]
    fn quota_rejects_the_overflowing_submit_and_frees_on_drain() {
        let mut sched = Scheduler::new(builtin_registry()).with_quota(2);
        let client = sched.register_client("alice");
        let d = sched.service_mut().intern(pipeline_design("p1", 8));
        let a = sched.submit(client, fast_job(d)).unwrap();
        let b = sched.submit(client, fast_job(d)).unwrap();
        match sched.submit(client, fast_job(d)) {
            Err(PlaceError::QuotaExceeded { client, quota }) => {
                assert_eq!(client, "alice");
                assert_eq!(quota, 2);
            }
            other => panic!("expected a quota rejection, got {other:?}"),
        }
        assert_eq!(sched.client_queued(client), 2);
        sched.drain();
        assert_eq!(sched.client_queued(client), 0, "the drain frees the quota");
        let c = sched.submit(client, fast_job(d)).unwrap();
        sched.drain();
        for id in [a, b, c] {
            assert!(sched.take_result(id).unwrap().is_ok());
        }
    }

    #[test]
    fn quotas_are_per_client() {
        let mut sched = Scheduler::new(builtin_registry()).with_quota(1);
        let alice = sched.register_client("alice");
        let bob = sched.register_client("bob");
        let d = sched.service_mut().intern(pipeline_design("p1", 8));
        sched.submit(alice, fast_job(d)).unwrap();
        assert!(matches!(sched.submit(alice, fast_job(d)), Err(PlaceError::QuotaExceeded { .. })));
        assert!(sched.submit(bob, fast_job(d)).is_ok(), "bob's quota is his own");
    }

    #[test]
    fn cancel_frees_the_quota_charge() {
        let mut sched = Scheduler::new(builtin_registry()).with_quota(1);
        let client = sched.register_client("alice");
        let d = sched.service_mut().intern(pipeline_design("p1", 8));
        let job = sched.submit(client, fast_job(d)).unwrap();
        assert!(sched.cancel(job));
        assert_eq!(sched.client_queued(client), 0);
        assert!(sched.submit(client, fast_job(d)).is_ok(), "the freed slot is usable");
        assert!(!sched.cancel(job), "a cancelled job cannot be cancelled again");
        assert!(matches!(sched.take_result(job), Some(Err(PlaceError::Cancelled))));
    }

    #[test]
    fn admission_rejects_when_pinned_bytes_exceed_the_budget() {
        // budget sized to hold the small design but not both: interning the
        // large one pins the store past its budget, so the next submit is
        // rejected with the remedy in the message
        let small = pipeline_design("small", 4);
        let large = pipeline_design("large", 64);
        small.connectivity();
        large.connectivity();
        let budget = small.heap_bytes() + large.heap_bytes() / 2;
        let service = PlacementService::with_store(
            builtin_registry(),
            DesignStore::with_memory_budget(budget),
        );
        let mut sched = Scheduler::with_service(service);
        let client = sched.register_client("ci");
        let ds = sched.service_mut().intern(small);
        let ok = sched.submit(client, fast_job(ds)).unwrap();
        let dl = sched.service_mut().intern(large);
        match sched.submit(client, fast_job(dl)) {
            Err(PlaceError::AdmissionRejected { design, pinned_bytes, budget_bytes }) => {
                assert_eq!(design, dl.0);
                assert!(pinned_bytes > budget_bytes, "{pinned_bytes} vs {budget_bytes}");
            }
            other => panic!("expected an admission rejection, got {other:?}"),
        }
        // releasing the large design unpins it — the next submit is admitted
        sched.service_mut().release(dl);
        sched.service_mut().store_mut().reclaim();
        let retry = sched.submit(client, fast_job(ds)).unwrap();
        sched.drain();
        assert!(sched.take_result(ok).unwrap().is_ok());
        assert!(sched.take_result(retry).unwrap().is_ok());
    }

    #[test]
    fn unregistered_client_is_rejected_not_fatal() {
        // regression: submitting under a never-registered client id used to
        // index out of bounds and take the daemon down (hidap-lint rule
        // daemon-panic); it must be an error the session can report
        let mut sched = Scheduler::new(builtin_registry());
        let d = sched.service_mut().intern(pipeline_design("p1", 8));
        let ghost = ClientId(99);
        assert_eq!(sched.client_queued(ghost), 0, "an unknown id has nothing queued");
        match sched.submit(ghost, fast_job(d)) {
            Err(PlaceError::InvalidRequest(reason)) => {
                assert!(reason.contains("unregistered"), "remedy named: {reason}");
            }
            other => panic!("expected an invalid-request error, got {other:?}"),
        }
        // the scheduler survives: a properly registered client still gets
        // service afterwards
        let client = sched.register_client("alice");
        let job = sched.submit(client, fast_job(d)).unwrap();
        sched.drain();
        assert!(sched.take_result(job).unwrap().is_ok());
    }

    #[test]
    fn unbudgeted_stores_admit_everything() {
        let mut sched = Scheduler::new(builtin_registry());
        let client = sched.register_client("dev");
        let d = sched.service_mut().intern(pipeline_design("p1", 64));
        assert!(sched.submit(client, fast_job(d)).is_ok());
    }
}
