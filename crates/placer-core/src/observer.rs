//! Typed stage events and the observer callback interface.

use std::sync::Mutex;

/// A typed event emitted as a flow moves through its stages.
///
/// Events carry owned data (they are low-frequency — one per stage or per
/// hierarchy level) so observers can queue them across threads.
#[derive(Debug, Clone, PartialEq)]
pub enum StageEvent {
    /// A flow run started.
    FlowStarted {
        /// Flow name as registered (`hidap`, `indeda`, `handfp`, ...).
        flow: String,
        /// RNG seed of this run.
        seed: u64,
        /// λ value of this run, when the flow has a λ knob.
        lambda: Option<f64>,
    },
    /// The hierarchy tree was built.
    HierarchyBuilt {
        /// Number of hierarchy levels.
        nodes: usize,
        /// Number of macros in the design.
        macros: usize,
    },
    /// Shape curves were generated for every hierarchy level.
    ShapeCurvesReady {
        /// Number of shape curves.
        curves: usize,
    },
    /// One hierarchy level's block floorplan was accepted.
    LevelFloorplanned {
        /// Recursion depth (0 = top).
        depth: usize,
        /// Hierarchy path of the floorplanned node (empty for the top).
        node: String,
        /// Number of blocks laid out at this level.
        blocks: usize,
    },
    /// Macro flipping chose final orientations.
    FlippingDone {
        /// Number of macros whose orientation changed from the default.
        flipped: usize,
    },
    /// Legalization finished.
    LegalizationDone {
        /// Number of macros legalization had to move.
        moved: usize,
    },
    /// A flow run finished successfully.
    FlowFinished {
        /// Wall-clock seconds of the run.
        wall_s: f64,
        /// Whether the resulting placement is legal.
        legal: bool,
    },
    /// One cell of a batch grid started.
    BatchRunStarted {
        /// Grid index (row-major over seeds×λ).
        index: usize,
        /// Total number of grid cells.
        total: usize,
        /// Seed of this cell.
        seed: u64,
        /// λ of this cell.
        lambda: f64,
    },
    /// One cell of a batch grid finished.
    BatchRunFinished {
        /// Grid index (row-major over seeds×λ).
        index: usize,
        /// Objective score (lower is better); `None` when the cell failed.
        score: Option<f64>,
    },
}

/// Receives stage events; implementations must be thread-safe because batch
/// runs emit from worker threads.
pub trait FlowObserver: Send + Sync {
    /// Called once per event, in the emitting run's stage order.
    fn on_event(&self, event: &StageEvent);
}

/// No-op observer.
impl FlowObserver for () {
    fn on_event(&self, _event: &StageEvent) {}
}

/// An observer that records every event, for tests and progress inspection.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    events: Mutex<Vec<StageEvent>>,
}

impl CollectingObserver {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events received so far.
    pub fn events(&self) -> Vec<StageEvent> {
        self.events.lock().expect("observer lock").clone()
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&StageEvent) -> bool) -> usize {
        self.events.lock().expect("observer lock").iter().filter(|e| pred(e)).count()
    }
}

impl FlowObserver for CollectingObserver {
    fn on_event(&self, event: &StageEvent) {
        self.events.lock().expect("observer lock").push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_in_order() {
        let obs = CollectingObserver::new();
        obs.on_event(&StageEvent::HierarchyBuilt { nodes: 3, macros: 2 });
        obs.on_event(&StageEvent::ShapeCurvesReady { curves: 3 });
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], StageEvent::HierarchyBuilt { .. }));
        assert_eq!(obs.count(|e| matches!(e, StageEvent::ShapeCurvesReady { .. })), 1);
    }
}
