//! Parallel seed×λ batch execution with deterministic winner selection.

use crate::context::PlaceContext;
use crate::error::PlaceError;
use crate::observer::StageEvent;
use crate::request::{PlaceOutcome, PlaceRequest, Placer};
use eval::EvalConfig;
use netlist::design::Design;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-cell result slot: the outcome and its objective score, or the error.
type CellResult = Result<(PlaceOutcome, f64), PlaceError>;

/// The seed×λ grid a batch explores (row-major: all λ for the first seed,
/// then all λ for the second, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGrid {
    /// RNG seeds to try.
    pub seeds: Vec<u64>,
    /// λ values to try.
    pub lambdas: Vec<f64>,
}

impl BatchGrid {
    /// A grid over explicit seeds and λ values.
    pub fn new(seeds: Vec<u64>, lambdas: Vec<f64>) -> Self {
        Self { seeds, lambdas }
    }

    /// A grid whose seeds are derived deterministically from `base_seed`
    /// with SplitMix64 — the per-run RNG derivation used by sweep front
    /// ends. The same `base_seed` and `num_seeds` always produce the same
    /// seeds, independent of thread count or execution order.
    pub fn derived(base_seed: u64, num_seeds: usize, lambdas: Vec<f64>) -> Self {
        let mut state = base_seed;
        let seeds = (0..num_seeds).map(|_| splitmix64(&mut state)).collect();
        Self { seeds, lambdas }
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.seeds.len() * self.lambdas.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The (seed, λ) of cell `index` (row-major).
    pub fn cell(&self, index: usize) -> (u64, f64) {
        let row = index / self.lambdas.len();
        let col = index % self.lambdas.len();
        (self.seeds[row], self.lambdas[col])
    }
}

/// One step of the SplitMix64 sequence (the same scheme the RNG seeding
/// uses), kept local so the derivation is stable even if the RNG shim moves.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scores one outcome; the batch winner is the cell with the lowest score
/// (ties broken by grid index, so winner selection is deterministic).
pub trait Objective: Send + Sync {
    /// The score of an outcome (lower is better).
    fn score(&self, design: &Design, outcome: &PlaceOutcome) -> f64;

    /// The evaluation the runner should attach to each request so
    /// [`Objective::score`] can reuse it instead of re-measuring.
    fn eval_config(&self) -> Option<EvalConfig> {
        None
    }
}

/// Picks the placement with the lowest measured wirelength, the selection
/// rule of the paper's handFP oracle and best-of-λ experiments.
#[derive(Debug, Clone)]
pub struct WirelengthObjective {
    /// Evaluation settings.
    pub eval: EvalConfig,
}

impl WirelengthObjective {
    /// Wirelength under the standard evaluation settings.
    pub fn standard() -> Self {
        Self { eval: EvalConfig::standard() }
    }
}

impl Objective for WirelengthObjective {
    fn score(&self, design: &Design, outcome: &PlaceOutcome) -> f64 {
        match &outcome.metrics {
            Some(metrics) => metrics.wirelength_m,
            // cold path: flows evaluate themselves when the runner attaches
            // this objective's eval config, so metrics is normally Some
            None => {
                eval::Evaluator::new(self.eval).evaluate(design, &outcome.placement).wirelength_m
            }
        }
    }

    fn eval_config(&self) -> Option<EvalConfig> {
        Some(self.eval)
    }
}

/// The fate of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Grid index (row-major).
    pub index: usize,
    /// Seed of the cell.
    pub seed: u64,
    /// λ of the cell.
    pub lambda: f64,
    /// Objective score (lower is better); `None` when the run failed.
    pub score: Option<f64>,
    /// Error message when the run failed.
    pub error: Option<String>,
    /// Wall-clock seconds of the run.
    pub wall_s: f64,
}

/// The result of a batch: the winning outcome plus per-cell summaries.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The winning run's outcome.
    pub winner: PlaceOutcome,
    /// Grid index of the winner.
    pub winner_index: usize,
    /// Objective score of the winner.
    pub winner_score: f64,
    /// One summary per grid cell, in grid order.
    pub runs: Vec<RunSummary>,
}

/// Executes a seed×λ grid, in parallel across worker threads, and picks the
/// winner by a pluggable [`Objective`].
///
/// Guarantees:
///
/// * **determinism** — each cell's request is derived only from the grid
///   spec (its seed and λ), and the winner is the lowest score with ties
///   broken by grid index; the result is identical for any `jobs` value,
/// * **isolation** — cells run with independent contexts sharing the
///   caller's observer, cancel token and deadline,
/// * **error tolerance** — failed cells are skipped; the batch fails only
///   when every cell fails (reporting the first error in grid order).
pub struct BatchRunner {
    jobs: usize,
    objective: Box<dyn Objective>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner using every available core and the wirelength objective.
    pub fn new() -> Self {
        Self { jobs: 0, objective: Box::new(WirelengthObjective::standard()) }
    }

    /// Sets the worker-thread count (0 = all available cores).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the winner-selection objective.
    pub fn with_objective(mut self, objective: Box<dyn Objective>) -> Self {
        self.objective = objective;
        self
    }

    /// The effective worker count for a grid of `cells` runs.
    pub fn effective_jobs(&self, cells: usize) -> usize {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let jobs = if self.jobs == 0 { available } else { self.jobs };
        jobs.clamp(1, cells.max(1))
    }

    /// Runs every cell of `grid` through `placer` and returns the winner.
    ///
    /// `template` supplies everything but seed and λ: the design, die
    /// override and effort tier. The template's own seed/λ are ignored.
    ///
    /// # Errors
    ///
    /// * [`PlaceError::InvalidRequest`] for an empty grid,
    /// * [`PlaceError::Cancelled`] / [`PlaceError::DeadlineExceeded`] when
    ///   the context interrupts the batch,
    /// * the first cell error (in grid order) when every cell fails.
    pub fn run(
        &self,
        placer: &dyn Placer,
        template: &PlaceRequest<'_>,
        grid: &BatchGrid,
        ctx: &mut PlaceContext,
    ) -> Result<BatchOutcome, PlaceError> {
        if grid.is_empty() {
            return Err(PlaceError::InvalidRequest("batch grid has no cells".into()));
        }
        if placer.is_composite() {
            return Err(PlaceError::InvalidRequest(format!(
                "flow '{}' is itself a multi-run composition; sweeping it would nest \
                 entire sweeps per grid cell",
                placer.name()
            )));
        }
        let total = grid.len();
        let jobs = self.effective_jobs(total);
        let scoring_design = template.effective_design();
        let scoring_design = scoring_design.as_ref();
        let next_cell = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; total]);

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = next_cell.fetch_add(1, Ordering::SeqCst);
                    if index >= total {
                        break;
                    }
                    let (seed, lambda) = grid.cell(index);
                    let mut child_ctx = ctx.child();
                    if let Some(err) = child_ctx.interrupted() {
                        results.lock().expect("batch results lock")[index] = Some(Err(err));
                        continue;
                    }
                    child_ctx.emit(StageEvent::BatchRunStarted { index, total, seed, lambda });
                    let mut request = template.clone().with_seed(seed).with_lambda(lambda);
                    // the objective picks the winner, so its evaluation
                    // settings take precedence over the template's
                    if let Some(eval) = self.objective.eval_config() {
                        request.evaluate = Some(eval);
                    }
                    let result = placer.place(&request, &mut child_ctx).map(|outcome| {
                        let score = self.objective.score(scoring_design, &outcome);
                        (outcome, score)
                    });
                    child_ctx.emit(StageEvent::BatchRunFinished {
                        index,
                        score: result.as_ref().ok().map(|(_, s)| *s),
                    });
                    results.lock().expect("batch results lock")[index] = Some(result);
                });
            }
        });

        // interruption wins over partial results so cancellation is prompt
        if let Some(err) = ctx.interrupted() {
            return Err(err);
        }

        let results = results.into_inner().expect("batch results lock");
        let mut runs = Vec::with_capacity(total);
        let mut winner: Option<(usize, f64, PlaceOutcome)> = None;
        let mut first_error: Option<PlaceError> = None;
        for (index, slot) in results.into_iter().enumerate() {
            let (seed, lambda) = grid.cell(index);
            match slot.expect("every grid cell was executed") {
                Ok((outcome, score)) => {
                    runs.push(RunSummary {
                        index,
                        seed,
                        lambda,
                        score: Some(score),
                        error: None,
                        wall_s: outcome.wall_s,
                    });
                    let better = match &winner {
                        Some((_, best, _)) => score < *best,
                        None => true,
                    };
                    if better {
                        winner = Some((index, score, outcome));
                    }
                }
                Err(err) => {
                    runs.push(RunSummary {
                        index,
                        seed,
                        lambda,
                        score: None,
                        error: Some(err.to_string()),
                        wall_s: 0.0,
                    });
                    first_error.get_or_insert(err);
                }
            }
        }

        match winner {
            Some((winner_index, winner_score, winner)) => {
                Ok(BatchOutcome { winner, winner_index, winner_score, runs })
            }
            None => Err(first_error.unwrap_or_else(|| {
                PlaceError::InvalidRequest("no batch cell produced a result".into())
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use hidap::{HidapConfig, HidapFlow};
    use netlist::design::DesignBuilder;

    fn pipeline_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..8 {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn grid_indexing_is_row_major() {
        let grid = BatchGrid::new(vec![7, 9], vec![0.2, 0.5, 0.8]);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid.cell(0), (7, 0.2));
        assert_eq!(grid.cell(2), (7, 0.8));
        assert_eq!(grid.cell(3), (9, 0.2));
        assert_eq!(grid.cell(5), (9, 0.8));
    }

    #[test]
    fn derived_grids_are_reproducible_and_seed_distinct() {
        let a = BatchGrid::derived(42, 4, vec![0.5]);
        let b = BatchGrid::derived(42, 4, vec![0.5]);
        assert_eq!(a, b);
        let mut seeds = a.seeds.clone();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "derived seeds must be distinct: {seeds:?}");
        assert_ne!(a.seeds, BatchGrid::derived(43, 4, vec![0.5]).seeds);
    }

    #[test]
    fn batch_picks_a_legal_winner_and_reports_every_cell() {
        let design = pipeline_design();
        let placer = HidapFlow::new(HidapConfig::fast());
        let grid = BatchGrid::new(vec![1, 2], vec![0.2, 0.8]);
        let outcome = BatchRunner::new()
            .with_jobs(2)
            .run(&placer, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())
            .unwrap();
        assert_eq!(outcome.runs.len(), 4);
        assert!(outcome.runs.iter().all(|r| r.score.is_some()));
        assert!(outcome.winner.placement.is_legal(&design));
        assert_eq!(outcome.winner_score, outcome.runs[outcome.winner_index].score.unwrap());
        // the winner really is the minimum score, ties to the lowest index
        let best = outcome
            .runs
            .iter()
            .filter_map(|r| r.score.map(|s| (r.index, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap();
        assert_eq!(outcome.winner_index, best.0);
    }

    #[test]
    fn empty_grid_is_rejected() {
        let design = pipeline_design();
        let placer = HidapFlow::new(HidapConfig::fast());
        let grid = BatchGrid::new(vec![], vec![0.5]);
        let err = BatchRunner::new()
            .run(&placer, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())
            .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidRequest(_)));
    }

    #[test]
    fn all_cells_failing_surfaces_first_error() {
        // a die too small for the macros makes every cell fail
        let mut b = DesignBuilder::new("t");
        b.add_macro("huge", "RAM", 1000, 1000, "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let design = b.build();
        let placer = HidapFlow::new(HidapConfig::fast());
        let grid = BatchGrid::new(vec![1, 2], vec![0.5]);
        let err = BatchRunner::new()
            .run(&placer, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())
            .unwrap_err();
        assert!(matches!(err, PlaceError::Flow(hidap::HidapError::MacrosExceedDie { .. })));
    }

    #[test]
    fn composite_placers_are_rejected() {
        struct Composite;
        impl crate::request::Placer for Composite {
            fn name(&self) -> &str {
                "composite"
            }
            fn is_composite(&self) -> bool {
                true
            }
            fn place(
                &self,
                _req: &PlaceRequest<'_>,
                _ctx: &mut PlaceContext,
            ) -> Result<crate::request::PlaceOutcome, PlaceError> {
                unreachable!("the runner must reject composite flows before placing")
            }
        }
        let design = pipeline_design();
        let grid = BatchGrid::new(vec![1], vec![0.5]);
        let err = BatchRunner::new()
            .run(&Composite, &PlaceRequest::new(&design), &grid, &mut PlaceContext::new())
            .unwrap_err();
        assert!(matches!(err, PlaceError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn pre_cancelled_batch_returns_cancelled() {
        let design = pipeline_design();
        let placer = HidapFlow::new(HidapConfig::fast());
        let grid = BatchGrid::new(vec![1], vec![0.5]);
        let mut ctx = PlaceContext::new();
        ctx.cancel_token().cancel();
        let err = BatchRunner::new()
            .run(&placer, &PlaceRequest::new(&design), &grid, &mut ctx)
            .unwrap_err();
        assert_eq!(err, PlaceError::Cancelled);
    }
}
