//! The BatchRunner determinism guarantee: the same grid and base seed
//! produce the identical winner regardless of `jobs` / thread count.

use hidap::{HidapConfig, HidapFlow};
use placer_core::{
    BatchGrid, BatchOutcome, BatchRunner, PlaceContext, PlaceRequest, WirelengthObjective,
};
use workload::presets::fig1_design;
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn run_with_jobs(design: &netlist::design::Design, grid: &BatchGrid, jobs: usize) -> BatchOutcome {
    let placer = HidapFlow::new(HidapConfig::fast());
    BatchRunner::new()
        .with_jobs(jobs)
        .with_objective(Box::new(WirelengthObjective::standard()))
        .run(&placer, &PlaceRequest::new(design), grid, &mut PlaceContext::new())
        .expect("batch succeeds")
}

#[test]
fn same_grid_same_winner_for_any_job_count() {
    let generated = fig1_design();
    let design = &generated.design;
    let grid = BatchGrid::new(vec![1, 2, 3], vec![0.2, 0.8]);

    let serial = run_with_jobs(design, &grid, 1);
    for jobs in [2, 4, 8] {
        let parallel = run_with_jobs(design, &grid, jobs);
        assert_eq!(serial.winner_index, parallel.winner_index, "jobs={jobs}");
        assert_eq!(serial.winner_score, parallel.winner_score, "jobs={jobs}");
        assert_eq!(serial.winner.placement, parallel.winner.placement, "jobs={jobs}");
        assert_eq!(serial.winner.seed, parallel.winner.seed, "jobs={jobs}");
        assert_eq!(serial.winner.lambda, parallel.winner.lambda, "jobs={jobs}");
        // every per-cell score matches, not just the winner
        let scores = |b: &BatchOutcome| b.runs.iter().map(|r| r.score).collect::<Vec<_>>();
        assert_eq!(scores(&serial), scores(&parallel), "jobs={jobs}");
    }
}

#[test]
fn derived_grids_give_identical_batches_across_thread_counts() {
    let generated = fig1_design();
    let design = &generated.design;
    // seeds derived from a base seed — the sweep mode the CLI uses
    let grid = BatchGrid::derived(99, 3, vec![0.2, 0.5]);
    assert_eq!(grid, BatchGrid::derived(99, 3, vec![0.2, 0.5]));

    let a = run_with_jobs(design, &grid, 1);
    let b = run_with_jobs(design, &grid, 6);
    assert_eq!(a.winner_index, b.winner_index);
    assert_eq!(a.winner.placement, b.winner.placement);
}

#[test]
fn repeated_batches_are_bit_identical() {
    let config = SocConfig {
        name: "det".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_a", 3, 8),
            SubsystemConfig::balanced("u_b", 3, 8),
        ],
        channels: vec![(0, 1)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 17,
    };
    let generated = SocGenerator::new(config).generate();
    let grid = BatchGrid::new(vec![5, 6], vec![0.5]);
    let a = run_with_jobs(&generated.design, &grid, 4);
    let b = run_with_jobs(&generated.design, &grid, 4);
    assert_eq!(a.winner.placement, b.winner.placement);
    assert_eq!(
        a.runs.iter().map(|r| r.score).collect::<Vec<_>>(),
        b.runs.iter().map(|r| r.score).collect::<Vec<_>>()
    );
}
