//! Property-based correctness of memory-governed eviction.
//!
//! The memory budget is a *performance* knob: caches and stores may drop and
//! rebuild whatever they like, but results must never change. These tests
//! drive a [`PlacementService`] over a **zero-byte budget** store (every
//! unreferenced design and artifact is evicted at the first opportunity —
//! the most hostile schedule a budget can produce) with random
//! intern/submit/release/evict interleavings, and assert that:
//!
//! * every job's placement and metrics are **bit-identical** to the same
//!   job run against an unbounded store (the oracle),
//! * a design with live references is **never evicted**, no matter how far
//!   over budget the store is,
//! * released-and-evicted designs **revive under their old handle** on
//!   re-intern.

use eval::EvalConfig;
use placer_core::{DesignHandle, PlaceJob, PlacementService};
use proptest::prelude::*;

/// The fixed pool of distinct design identities the ops index into.
const POOL: usize = 3;

/// A deterministic pipeline design per pool slot (slot `i` differs from
/// slot `j` in name and register count, so they intern separately).
fn pool_design(slot: usize) -> netlist::design::Design {
    use netlist::design::DesignBuilder;
    let mut b = DesignBuilder::new(format!("pool_{slot}"));
    let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
    let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
    for i in 0..(6 + 2 * slot) {
        let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
        let n0 = b.add_net(format!("n0_{i}"));
        let n1 = b.add_net(format!("n1_{i}"));
        b.connect_driver(n0, a);
        b.connect_sink(n0, f);
        b.connect_driver(n1, f);
        b.connect_sink(n1, c);
    }
    b.set_die(geometry::Rect::new(0, 0, 2000, 1500));
    b.build()
}

/// One step of a random schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Intern (or revive) the slot's design and run one evaluated hidap job
    /// on it with this seed.
    Submit(usize, u64),
    /// Drop one reference to the slot's design (no-op when never interned).
    Release(usize),
    /// Evict every unreferenced design right now.
    Evict,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..10, 0usize..POOL, 1u64..4).prop_map(|(pick, slot, seed)| match pick {
        0..=4 => Op::Submit(slot, seed),
        5..=7 => Op::Release(slot),
        _ => Op::Evict,
    })
}

/// Runs one evaluated job and returns its outcome.
fn run_job(
    service: &mut PlacementService,
    handle: DesignHandle,
    seed: u64,
) -> placer_core::JobResult {
    let job = service.submit(
        PlaceJob::new(handle, "hidap")
            .with_effort(placer_core::EffortLevel::Fast)
            .with_seeds(vec![seed])
            .with_evaluation(EvalConfig::standard()),
    );
    service.run_all();
    service.take_result(job).expect("job ran").expect("job succeeded")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn any_interleaving_under_a_tiny_budget_matches_the_unbounded_oracle(
        ops in prop::collection::vec(op_strategy(), 1..8),
    ) {
        // zero budget: the most aggressive eviction schedule possible
        let budgeted_store = placer_core::DesignStore::with_memory_budget(0);
        let mut budgeted =
            PlacementService::with_store(placer_core::builtin_registry(), budgeted_store);
        let mut oracle = PlacementService::new(placer_core::builtin_registry());

        // pool slot → (handle, live refs we have added) in the budgeted store
        let mut handles: [Option<(DesignHandle, usize)>; POOL] = [None; POOL];

        for &op in &ops {
            match op {
                Op::Submit(slot, seed) => {
                    // intern-or-revive, run, compare against the oracle
                    let handle = budgeted.intern(pool_design(slot));
                    if let Some((known, refs)) = handles[slot] {
                        prop_assert_eq!(handle, known, "revival must reuse the old handle");
                        handles[slot] = Some((known, refs + 1));
                    } else {
                        handles[slot] = Some((handle, 1));
                    }
                    let got = run_job(&mut budgeted, handle, seed);

                    let oracle_handle = oracle.intern(pool_design(slot));
                    let want = run_job(&mut oracle, oracle_handle, seed);
                    prop_assert_eq!(
                        &got.outcome.placement, &want.outcome.placement,
                        "budgeted placement diverged from the unbounded oracle"
                    );
                    prop_assert_eq!(
                        &got.outcome.metrics, &want.outcome.metrics,
                        "budgeted metrics diverged from the unbounded oracle"
                    );
                }
                Op::Release(slot) => {
                    if let Some((handle, refs)) = handles[slot] {
                        if refs > 0 {
                            budgeted.release(handle);
                            handles[slot] = Some((handle, refs - 1));
                        }
                    }
                }
                Op::Evict => {
                    budgeted.store_mut().evict_unreferenced();
                }
            }
            // the liveness invariant, checked after every op: a handle with
            // live references is never evicted, however tight the budget
            for (handle, refs) in handles.iter().flatten() {
                prop_assert_eq!(budgeted.store().ref_count(*handle), *refs);
                if *refs > 0 {
                    prop_assert!(
                        budgeted.store().is_resident(*handle),
                        "live handle {:?} was evicted", handle
                    );
                }
            }
        }

        // the oracle never evicts; the budgeted store never exceeds its
        // budget except through live references
        prop_assert_eq!(oracle.store().design_evictions(), 0);
    }
}

/// The budget-pressure schedule with no randomness: release → immediate
/// eviction → re-intern → bit-identical rerun (the service-level mirror of
/// the store unit tests, kept out of the proptest so it always runs).
#[test]
fn evicted_and_rebuilt_results_are_bit_identical() {
    let store = placer_core::DesignStore::with_memory_budget(0);
    let mut service = PlacementService::with_store(placer_core::builtin_registry(), store);
    let handle = service.intern(pool_design(0));
    let cold = run_job(&mut service, handle, 7);

    service.release(handle);
    assert!(!service.store().is_resident(handle), "zero budget evicts on release");
    assert_eq!(service.store().artifacts().resident_bytes(), 0);

    let revived = service.intern(pool_design(0));
    assert_eq!(revived, handle);
    let rebuilt = run_job(&mut service, handle, 7);
    assert_eq!(cold.outcome.placement, rebuilt.outcome.placement);
    assert_eq!(cold.outcome.metrics, rebuilt.outcome.metrics);
}
