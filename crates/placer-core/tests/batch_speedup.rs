//! Wall-clock evidence for the parallel batch engine: a multi-seed sweep on
//! a multi-core machine must be several times faster than the serial
//! equivalent (the seed's `HandFp`/best-of-λ loops ran every candidate one
//! after another).
//!
//! Ignored by default (it is a timing measurement, not a correctness test);
//! run it with:
//!
//! ```text
//! cargo test --release -p placer-core --test batch_speedup -- --ignored --nocapture
//! ```

use hidap::{HidapConfig, HidapFlow};
use placer_core::{BatchGrid, BatchRunner, PlaceContext, PlaceRequest, WirelengthObjective};
use std::time::Instant;
use workload::presets::generate_circuit;

#[test]
#[ignore = "timing demonstration; run explicitly with --ignored --nocapture"]
fn parallel_sweep_beats_serial_sweep() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let generated = generate_circuit("c3");
    let design = &generated.design;
    // 8 seeds × 2 λ = 16 candidates, the shape of a handFP-style sweep
    let grid = BatchGrid::new((1..=8).collect(), vec![0.2, 0.8]);
    let placer = HidapFlow::new(HidapConfig::fast());
    let runner = |jobs: usize| {
        BatchRunner::new().with_jobs(jobs).with_objective(Box::new(WirelengthObjective::standard()))
    };

    // warm-up so allocator/page-cache effects don't skew the serial baseline
    runner(1)
        .run(
            &placer,
            &PlaceRequest::new(design),
            &BatchGrid::new(vec![1], vec![0.5]),
            &mut PlaceContext::new(),
        )
        .expect("warm-up");

    let t = Instant::now();
    let serial = runner(1)
        .run(&placer, &PlaceRequest::new(design), &grid, &mut PlaceContext::new())
        .expect("serial sweep");
    let serial_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let parallel = runner(0)
        .run(&placer, &PlaceRequest::new(design), &grid, &mut PlaceContext::new())
        .expect("parallel sweep");
    let parallel_s = t.elapsed().as_secs_f64();

    let speedup = serial_s / parallel_s.max(1e-9);
    println!(
        "batch sweep on {} candidates, {cores} cores: serial {serial_s:.2} s, parallel {parallel_s:.2} s, speedup {speedup:.2}x",
        grid.len(),
    );

    // determinism holds no matter the worker count
    assert_eq!(serial.winner_index, parallel.winner_index);
    assert_eq!(serial.winner.placement, parallel.winner.placement);

    if cores >= 8 {
        assert!(
            speedup >= 3.0,
            "expected >= 3x speedup on {cores} cores, measured {speedup:.2}x (serial {serial_s:.2} s, parallel {parallel_s:.2} s)"
        );
    } else if cores >= 2 {
        assert!(speedup >= 1.3, "expected parallel win on {cores} cores, measured {speedup:.2}x");
    }
}
