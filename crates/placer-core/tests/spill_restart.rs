//! The spill tier across service lifetimes: warm-start seeds and revived
//! artifacts must be a *timing* optimization, never a result change.
//!
//! These tests drive [`PlacementService`]s pointed at one spill directory
//! and assert that:
//!
//! * a `replace` job whose base result is gone — a [`JobId`] from a previous
//!   service incarnation, or one whose result was already taken — revives
//!   the design's persisted warm-start seed and produces a result
//!   **bit-identical** to the same replace run against the held base,
//! * with no seed file present the structured dependency errors are
//!   unchanged,
//! * random schedules over a zero-budget store **with** a spill directory
//!   (every eviction spills, every miss revives) match the unbounded,
//!   spill-less oracle bit-identically.

use eval::EvalConfig;
use netlist::DesignEdit;
use placer_core::{DesignHandle, JobId, PlaceJob, PlacementService};
use proptest::prelude::*;

/// The fixed pool of distinct design identities (mirrors
/// `artifact_eviction.rs` so the two suites stress the same shapes).
const POOL: usize = 3;

fn pool_design(slot: usize) -> netlist::design::Design {
    use netlist::design::DesignBuilder;
    let mut b = DesignBuilder::new(format!("pool_{slot}"));
    let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
    let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
    for i in 0..(6 + 2 * slot) {
        let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
        let n0 = b.add_net(format!("n0_{i}"));
        let n1 = b.add_net(format!("n1_{i}"));
        b.connect_driver(n0, a);
        b.connect_sink(n0, f);
        b.connect_driver(n1, f);
        b.connect_sink(n1, c);
    }
    b.set_die(geometry::Rect::new(0, 0, 2000, 1500));
    b.build()
}

fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hidap-restart-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn evaluated_job(handle: DesignHandle, seed: u64) -> PlaceJob {
    PlaceJob::new(handle, "hidap")
        .with_effort(placer_core::EffortLevel::Fast)
        .with_seeds(vec![seed])
        .with_evaluation(EvalConfig::standard())
}

/// The resize edit the replace jobs apply: pure geometry, so artifacts stay
/// warm and the post-edit design interns under a new geometry fingerprint.
fn resize_edits(service: &PlacementService, handle: DesignHandle) -> Vec<DesignEdit> {
    let ram = service.store().design(handle).find_cell("u_a/ram").expect("macro exists");
    vec![DesignEdit::ResizeCell { cell: ram, width: 260, height: 170 }]
}

#[test]
fn replace_survives_a_service_restart_bit_identically() {
    let dir = scratch("replace-restart");

    // First service lifetime: a decoy job (different design, so its seed
    // file lives under another fingerprint), the base job, then the
    // reference replace resolved from the held base result.
    let mut first = PlacementService::new(placer_core::builtin_registry()).with_spill_dir(&dir);
    let decoy = first.intern(pool_design(1));
    first.submit(evaluated_job(decoy, 3));
    let design = first.intern(pool_design(0));
    let base = first.submit(evaluated_job(design, 7));
    first.run_all();
    assert_eq!(base, JobId(1));
    assert_eq!(first.stats().seed_spills, 2, "every successful job persists its seed");

    let edits = resize_edits(&first, design);
    let replace = first.submit(evaluated_job(design, 7).with_replace(base, edits.clone()));
    first.run_all();
    let reference = first.take_result(replace).expect("ran").expect("succeeded");
    assert_eq!(first.stats().seed_revives, 0, "a held base resolves in memory, not from disk");

    // Second lifetime over the same directory: the base JobId is stale (it
    // was issued by the previous incarnation and is >= this service's
    // counter), so the replace revives the persisted seed.
    let mut second = PlacementService::new(placer_core::builtin_registry()).with_spill_dir(&dir);
    let design2 = second.intern(pool_design(0));
    let replay = second.submit(evaluated_job(design2, 7).with_replace(base, edits));
    second.run_all();
    let replayed = second.take_result(replay).expect("ran").expect("revived seed served the base");
    assert_eq!(second.stats().seed_revives, 1);

    assert_eq!(
        reference.outcome.placement, replayed.outcome.placement,
        "a revived seed must warm-start exactly like the held base result"
    );
    assert_eq!(reference.outcome.metrics, replayed.outcome.metrics);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_after_the_base_was_taken_revives_from_the_spill_dir() {
    let dir = scratch("taken-base");
    let mut service = PlacementService::new(placer_core::builtin_registry()).with_spill_dir(&dir);
    let design = service.intern(pool_design(0));
    let base = service.submit(evaluated_job(design, 7));
    service.run_all();
    // taking the base result normally fails a later replace (take-once);
    // with a spill directory the persisted seed steps in
    let base_result = service.take_result(base).expect("ran").expect("succeeded");
    let edits = resize_edits(&service, design);
    let replace = service.submit(evaluated_job(design, 7).with_replace(base, edits));
    service.run_all();
    let result = service.take_result(replace).expect("ran").expect("seed file replaced the base");
    assert_eq!(service.stats().seed_revives, 1);
    assert_eq!(result.outcome.placement.macros.len(), base_result.outcome.placement.macros.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_a_seed_file_the_structured_errors_are_unchanged() {
    let dir = scratch("no-seed");
    let mut service = PlacementService::new(placer_core::builtin_registry()).with_spill_dir(&dir);
    let design = service.intern(pool_design(0));
    // no job has run: the directory holds no seed for this design
    let replace = service.submit(evaluated_job(design, 7).with_replace(JobId(999), Vec::new()));
    service.run_all();
    let err = service.take_result(replace).expect("ran").expect_err("no base, no seed");
    assert!(err.to_string().contains("never submitted"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One step of a random schedule (same shape as `artifact_eviction.rs`).
#[derive(Debug, Clone, Copy)]
enum Op {
    Submit(usize, u64),
    Release(usize),
    Evict,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..10, 0usize..POOL, 1u64..4).prop_map(|(pick, slot, seed)| match pick {
        0..=4 => Op::Submit(slot, seed),
        5..=7 => Op::Release(slot),
        _ => Op::Evict,
    })
}

fn run_job(
    service: &mut PlacementService,
    handle: DesignHandle,
    seed: u64,
) -> placer_core::JobResult {
    let job = service.submit(evaluated_job(handle, seed));
    service.run_all();
    service.take_result(job).expect("job ran").expect("job succeeded")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn spilled_and_revived_runs_match_the_spill_less_oracle(
        ops in prop::collection::vec(op_strategy(), 1..8),
    ) {
        // zero budget + spill dir: every eviction spills, every rebuild
        // probes the spill tier first — the maximum-revive schedule
        let dir = scratch("proptest");
        let store =
            placer_core::DesignStore::with_memory_budget(0).with_spill_dir(&dir);
        let mut spilled = PlacementService::with_store(placer_core::builtin_registry(), store);
        let mut oracle = PlacementService::new(placer_core::builtin_registry());
        let mut handles: [Option<DesignHandle>; POOL] = [None; POOL];

        for &op in &ops {
            match op {
                Op::Submit(slot, seed) => {
                    let handle = spilled.intern(pool_design(slot));
                    if let Some(known) = handles[slot] {
                        prop_assert_eq!(handle, known);
                    }
                    handles[slot] = Some(handle);
                    let got = run_job(&mut spilled, handle, seed);
                    let oracle_handle = oracle.intern(pool_design(slot));
                    let want = run_job(&mut oracle, oracle_handle, seed);
                    prop_assert_eq!(
                        &got.outcome.placement, &want.outcome.placement,
                        "revived artifacts changed a placement"
                    );
                    prop_assert_eq!(
                        &got.outcome.metrics, &want.outcome.metrics,
                        "revived artifacts changed metrics"
                    );
                }
                Op::Release(slot) => {
                    if let Some(handle) = handles[slot] {
                        spilled.release(handle);
                    }
                }
                Op::Evict => {
                    spilled.store_mut().evict_unreferenced();
                }
            }
        }

        // zero budget evicts aggressively: anything evicted was spilled, and
        // spilling must never be lossy under this schedule (the directory is
        // always writable), so spills track evictions
        let stats = spilled.stats();
        let spilled_total = stats.artifacts.spills() + stats.csr_spills;
        let evicted_total = stats.artifacts.evictions() + stats.design_evictions;
        prop_assert!(
            spilled_total >= evicted_total.min(1),
            "evictions happened without spilling: {stats:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
