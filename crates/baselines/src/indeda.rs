//! The IndEDA-style baseline: a flat, connectivity-driven macro placer.
//!
//! This models the behaviour of the commercial floorplanner the paper
//! compares against: it sees only the flattened netlist (no hierarchy, no
//! array/dataflow information), optimizes net-based wirelength with simulated
//! annealing over macro positions, and biases macros towards the die
//! periphery so the core area stays free for standard cells — which is
//! exactly the strategy whose shortcomings motivate HiDaP.
//!
//! Moves are scored by **true netlist HPWL deltas** through an
//! [`eval::IncrementalHpwl`] session over the design's CSR connectivity
//! (ports at their fixed positions, macros at their current centers): a move
//! costs `O(Σ degree(nets of the moved macro))` instead of the full
//! macro-net rescan the annealer used to pay per proposal, and the
//! wirelength the annealer optimizes is exactly the quantity the evaluation
//! pipeline measures. The periphery-bias and overlap terms are likewise
//! applied as per-move deltas.

use eval::{CellPlacement, IncrementalHpwl};
use geometry::{Orientation, Point, Rect};
use hidap::legalize::{legalize_macros, MacroFootprint, MacroFootprints};
use hidap::placement::{MacroPlacement, PlacedMacro};
use hidap::HidapError;
use netlist::design::{CellId, Design};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the IndEDA-style baseline placer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndEdaConfig {
    /// Simulated-annealing moves per macro per temperature step.
    pub moves_per_macro: usize,
    /// Number of temperature steps.
    pub temperature_steps: usize,
    /// Geometric cooling factor.
    pub cooling: f64,
    /// Weight of the wall-attraction term (0 disables the periphery bias).
    pub wall_weight: f64,
    /// Weight of the overlap penalty.
    pub overlap_weight: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for IndEdaConfig {
    fn default() -> Self {
        Self {
            moves_per_macro: 40,
            temperature_steps: 60,
            cooling: 0.92,
            wall_weight: 0.4,
            overlap_weight: 4.0,
            seed: 1,
        }
    }
}

impl IndEdaConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        Self { moves_per_macro: 12, temperature_steps: 25, ..Self::default() }
    }

    /// The configuration implied by an engine effort tier.
    pub fn for_effort(effort: placer_core::EffortLevel) -> Self {
        match effort {
            placer_core::EffortLevel::Fast => Self::fast(),
            placer_core::EffortLevel::Default => Self::default(),
            placer_core::EffortLevel::High => {
                Self { moves_per_macro: 80, temperature_steps: 90, ..Self::default() }
            }
        }
    }
}

/// A fixed-seed audit trail of one annealing run: how many moves were
/// proposed and accepted, and an FNV-1a hash over the accepted-move sequence
/// (proposal counter, moved macro, resulting corner and rotation — both
/// macros for swap moves). Regression tests pin it so any change to the
/// move scoring or acceptance behaviour is caught explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnealTrace {
    /// Number of proposed moves (fixed by the configuration).
    pub proposed: u64,
    /// Number of accepted moves.
    pub accepted: u64,
    /// FNV-1a hash of the accepted-move sequence.
    pub trace_hash: u64,
}

impl Default for AnnealTrace {
    /// The empty trace: no proposals, the hash at the FNV offset basis —
    /// the same value a run that accepts nothing ends at.
    fn default() -> Self {
        Self::new()
    }
}

impl AnnealTrace {
    fn new() -> Self {
        Self { proposed: 0, accepted: 0, trace_hash: netlist::Fnv1a::new().finish() }
    }

    /// Folds one accepted placement of `macro_index` into the running hash.
    fn accept(&mut self, macro_index: usize, state: (Point, bool)) {
        let mut h = netlist::Fnv1a::resume(self.trace_hash);
        h.write_u64(self.proposed);
        h.write_u64(macro_index as u64);
        h.write_u64(state.0.x as u64);
        h.write_u64(state.0.y as u64);
        h.write_u64(u64::from(state.1));
        self.trace_hash = h.finish();
    }
}

/// The IndEDA-style flat macro placer.
#[derive(Debug, Clone)]
pub struct IndEda {
    config: IndEdaConfig,
}

impl IndEda {
    /// Creates the baseline with the given configuration.
    pub fn new(config: IndEdaConfig) -> Self {
        Self { config }
    }

    /// Runs the baseline flow and returns a legal macro placement.
    ///
    /// # Errors
    ///
    /// Returns [`HidapError::EmptyDie`] / [`HidapError::MacrosExceedDie`] under
    /// the same conditions as the HiDaP flow.
    pub fn run(&self, design: &Design) -> Result<MacroPlacement, HidapError> {
        self.run_traced(design).map(|(placement, _)| placement)
    }

    /// [`IndEda::run`] plus the [`AnnealTrace`] of the annealing loop (for
    /// fixed-seed regression tests and tuning).
    pub fn run_traced(&self, design: &Design) -> Result<(MacroPlacement, AnnealTrace), HidapError> {
        let die = design.die();
        if die.width() <= 0 || die.height() <= 0 {
            return Err(HidapError::EmptyDie);
        }
        let macros: Vec<CellId> = design.macros().collect();
        let macro_area: i128 = macros.iter().map(|&m| design.cell(m).area()).sum();
        if macro_area > die.area() {
            return Err(HidapError::MacrosExceedDie { macro_area, die_area: die.area() });
        }
        if macros.is_empty() {
            return Ok((MacroPlacement::default(), AnnealTrace::default()));
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let die_edge = ((die.width() + die.height()) as f64).max(1.0);
        let rect_of = |m: CellId, &(loc, rotated): &(Point, bool)| {
            let c = design.cell(m);
            let (w, h) = if rotated { (c.height, c.width) } else { (c.width, c.height) };
            Rect::from_size(loc.x, loc.y, w, h)
        };
        let wall_of = |r: &Rect| {
            let c = r.center();
            (c.x - die.llx).min(die.urx - c.x).min(c.y - die.lly).min(die.ury - c.y).max(0) as f64
        };

        // Initial positions: macros spread on a grid.
        let cols = (macros.len() as f64).sqrt().ceil() as usize;
        let mut state: Vec<(Point, bool)> = macros
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let cell = design.cell(m);
                let col = i % cols;
                let row = i / cols;
                let x = die.llx + (die.width() * col as i64) / cols as i64;
                let y = die.lly + (die.height() * row as i64) / cols as i64;
                let x = x.min(die.urx - cell.width);
                let y = y.min(die.ury - cell.height);
                (Point::new(x.max(die.llx), y.max(die.lly)), false)
            })
            .collect();
        let mut rects: Vec<Rect> = macros.iter().zip(&state).map(|(&m, s)| rect_of(m, s)).collect();

        // The incremental HPWL session: macros at their centers, ports at
        // their fixed positions, standard cells unplaced (nets with fewer
        // than two placed pins contribute nothing, exactly like the full
        // evaluation of a macro-only placement).
        let mut cells = CellPlacement::with_num_cells(design.num_cells());
        for (&m, r) in macros.iter().zip(&rects) {
            cells.set_position(m, r.center());
        }
        let mut hpwl = IncrementalHpwl::new(design, &cells);

        // Σ_{i<j} overlap and Σ wall distance of the initial state.
        let mut total_overlap = 0.0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                total_overlap += rects[i].overlap_area(&rects[j]) as f64;
            }
        }
        let total_wall: f64 = rects.iter().map(wall_of).sum();

        let mut current_cost = hpwl.hpwl().dbu as f64
            + self.config.wall_weight * total_wall
            + self.config.overlap_weight * total_overlap / die_edge;
        let mut best_state = state.clone();
        let mut best_cost = current_cost;
        let mut temperature = current_cost.max(1.0) * 0.05;
        let mut trace = AnnealTrace::new();

        // Σ overlap over every pair with an endpoint in the affected set
        // ({idx} or {idx, other}), each pair counted once.
        let affected_overlap = |rects: &[Rect], idx: usize, other: Option<usize>| {
            let mut sum = 0.0;
            for (j, r) in rects.iter().enumerate() {
                if j != idx {
                    sum += rects[idx].overlap_area(r) as f64;
                }
            }
            if let Some(o) = other {
                for (j, r) in rects.iter().enumerate() {
                    if j != o && j != idx {
                        sum += rects[o].overlap_area(r) as f64;
                    }
                }
            }
            sum
        };

        for _ in 0..self.config.temperature_steps {
            for _ in 0..self.config.moves_per_macro * macros.len() {
                trace.proposed += 1;
                let idx = rng.gen_range(0..macros.len());
                let saved = state[idx];
                // the second macro of a swap move (with its pre-move state),
                // when one is touched
                let mut swapped: Option<(usize, (Point, bool))> = None;
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        // displace
                        let cell = design.cell(macros[idx]);
                        let (w, h) = if state[idx].1 {
                            (cell.height, cell.width)
                        } else {
                            (cell.width, cell.height)
                        };
                        let max_x = (die.urx - w).max(die.llx);
                        let max_y = (die.ury - h).max(die.lly);
                        state[idx].0 = Point::new(
                            rng.gen_range(die.llx..=max_x),
                            rng.gen_range(die.lly..=max_y),
                        );
                    }
                    2 => {
                        // rotate
                        state[idx].1 = !state[idx].1;
                    }
                    _ => {
                        // swap corners with another macro
                        let o = rng.gen_range(0..macros.len());
                        if o != idx {
                            swapped = Some((o, state[o]));
                            let tmp = state[idx].0;
                            state[idx].0 = state[o].0;
                            state[o].0 = tmp;
                        }
                    }
                }
                let other = swapped.map(|(o, _)| o);
                let saved_other = swapped.map(|(o, s)| (o, s, rects[o]));
                let saved_rect = rects[idx];

                // score the move as a delta: wall and overlap of the touched
                // rectangles before/after, HPWL from the incremental session
                let mut old_wall = wall_of(&rects[idx]);
                let old_overlap = affected_overlap(&rects, idx, other);
                if let Some(o) = other {
                    old_wall += wall_of(&rects[o]);
                }
                rects[idx] = rect_of(macros[idx], &state[idx]);
                let mut delta_wl = hpwl.move_cell(macros[idx], rects[idx].center());
                let mut new_wall = wall_of(&rects[idx]);
                if let Some(o) = other {
                    rects[o] = rect_of(macros[o], &state[o]);
                    delta_wl += hpwl.move_cell(macros[o], rects[o].center());
                    new_wall += wall_of(&rects[o]);
                }
                let new_overlap = affected_overlap(&rects, idx, other);
                let delta = delta_wl as f64
                    + self.config.wall_weight * (new_wall - old_wall)
                    + self.config.overlap_weight * (new_overlap - old_overlap) / die_edge;

                if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp() {
                    current_cost += delta;
                    trace.accepted += 1;
                    trace.accept(idx, state[idx]);
                    if let Some(o) = other {
                        trace.accept(o, state[o]);
                    }
                    if current_cost < best_cost {
                        best_cost = current_cost;
                        best_state = state.clone();
                    }
                } else {
                    // revert: state, rectangles and the HPWL session
                    state[idx] = saved;
                    rects[idx] = saved_rect;
                    hpwl.move_cell(macros[idx], saved_rect.center());
                    if let Some((o, s, r)) = saved_other {
                        state[o] = s;
                        rects[o] = r;
                        hpwl.move_cell(macros[o], r.center());
                    }
                }
            }
            temperature *= self.config.cooling;
        }

        // Legalize and emit the placement.
        let mut footprints: MacroFootprints = macros
            .iter()
            .zip(&best_state)
            .map(|(&m, &(loc, rotated))| (m, MacroFootprint { location: loc, rotated }))
            .collect();
        legalize_macros(design, die, &mut footprints);
        let mut placed: Vec<PlacedMacro> = footprints
            .iter()
            .map(|(cell, fp)| PlacedMacro {
                cell,
                location: fp.location,
                orientation: if fp.rotated { Orientation::W } else { Orientation::N },
            })
            .collect();
        placed.sort_by_key(|m| m.cell);
        Ok((MacroPlacement { macros: placed, top_blocks: Vec::new() }, trace))
    }
}

impl placer_core::Placer for IndEda {
    fn name(&self) -> &str {
        "indeda"
    }

    fn supports_lambda(&self) -> bool {
        false
    }

    fn place(
        &self,
        req: &placer_core::PlaceRequest<'_>,
        ctx: &mut placer_core::PlaceContext,
    ) -> Result<placer_core::PlaceOutcome, placer_core::PlaceError> {
        use placer_core::{PlaceError, StageEvent, StageTiming};

        req.validate()?;
        if let Some(err) = ctx.interrupted() {
            return Err(err);
        }
        // λ is a dataflow-affinity knob this flat flow does not have
        let mut config = match req.effort {
            Some(effort) => IndEdaConfig::for_effort(effort),
            None => self.config,
        };
        config.seed = req.seed;
        let design = req.effective_design();
        ctx.emit(StageEvent::FlowStarted { flow: "indeda".into(), seed: req.seed, lambda: None });

        // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
        let start = std::time::Instant::now();
        let placement = IndEda::new(config).run(design.as_ref()).map_err(PlaceError::from)?;
        let wall_s = start.elapsed().as_secs_f64();
        let mut timings = vec![StageTiming { stage: "anneal".into(), seconds: wall_s }];

        let metrics = req.evaluate.as_ref().map(|eval_cfg| {
            // lint:allow(wall-clock): report-only wall_s stage timing; never influences placement
            let t = std::time::Instant::now();
            // context-shared evaluator: one Gseq per sweep, no to_map()
            let metrics = ctx.evaluator(*eval_cfg).evaluate(design.as_ref(), &placement);
            timings
                .push(StageTiming { stage: "evaluate".into(), seconds: t.elapsed().as_secs_f64() });
            metrics
        });

        ctx.emit(StageEvent::FlowFinished { wall_s, legal: placement.is_legal(design.as_ref()) });
        Ok(placer_core::PlaceOutcome {
            placement,
            flow: "indeda".into(),
            seed: req.seed,
            lambda: None,
            stage_timings: timings,
            wall_s,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    fn design_with_connected_macros() -> Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("a", "RAM", 200, 150, "");
        let c = b.add_macro("c", "RAM", 200, 150, "");
        let e = b.add_macro("e", "RAM", 200, 150, "");
        // a and c are heavily connected; e is isolated
        for i in 0..16 {
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, a);
            b.connect_sink(n, c);
        }
        let _ = e;
        b.set_die(Rect::new(0, 0, 2000, 2000));
        b.build()
    }

    #[test]
    fn produces_legal_placement() {
        let d = design_with_connected_macros();
        let p = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        assert_eq!(p.macros.len(), 3);
        assert!(p.is_legal(&d));
    }

    #[test]
    fn connected_macros_end_up_closer_than_unconnected() {
        let d = design_with_connected_macros();
        let p = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        let a = d.find_cell("a").unwrap();
        let c = d.find_cell("c").unwrap();
        let e = d.find_cell("e").unwrap();
        let ra = p.rect_of(a, &d).unwrap();
        let rc = p.rect_of(c, &d).unwrap();
        let re = p.rect_of(e, &d).unwrap();
        let d_ac = ra.center_distance(&rc);
        let d_ae = ra.center_distance(&re);
        assert!(d_ac <= d_ae, "connected pair should not be farther apart than the isolated macro (d_ac={d_ac}, d_ae={d_ae})");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let d = design_with_connected_macros();
        let a = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        let b = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_seed_accepted_move_trace_is_pinned() {
        // Pins the annealer's exact accepted-move sequence under the
        // incremental-HPWL scoring: any change to the cost model, the move
        // generation or the acceptance rule shows up here first.
        let d = design_with_connected_macros();
        let (placement, trace) = IndEda::new(IndEdaConfig::fast()).run_traced(&d).unwrap();
        assert!(placement.is_legal(&d));
        assert_eq!(
            trace.proposed,
            (IndEdaConfig::fast().temperature_steps * IndEdaConfig::fast().moves_per_macro * 3)
                as u64
        );
        let expected =
            AnnealTrace { proposed: 900, accepted: 377, trace_hash: 5735527431765702742 };
        assert_eq!(trace, expected, "accepted-move trace drifted: {trace:?}");
        // the trace is itself deterministic
        let (_, again) = IndEda::new(IndEdaConfig::fast()).run_traced(&d).unwrap();
        assert_eq!(trace, again);
    }

    #[test]
    fn empty_die_is_error() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("a", "RAM", 10, 10, "");
        let d = b.build();
        assert!(IndEda::new(IndEdaConfig::fast()).run(&d).is_err());
    }

    #[test]
    fn wall_bias_pushes_macros_towards_periphery() {
        // a single unconnected macro: with a strong wall weight it should not
        // sit in the die center
        let mut b = DesignBuilder::new("t");
        b.add_macro("a", "RAM", 100, 100, "");
        b.set_die(Rect::new(0, 0, 2000, 2000));
        let d = b.build();
        let cfg = IndEdaConfig { wall_weight: 10.0, ..IndEdaConfig::fast() };
        let p = IndEda::new(cfg).run(&d).unwrap();
        let m = d.find_cell("a").unwrap();
        let center = p.rect_of(m, &d).unwrap().center();
        let die_center = d.die().center();
        let dist_from_center = center.manhattan_distance(die_center);
        assert!(
            dist_from_center > 500,
            "macro should be pushed away from the die center, got {center}"
        );
    }
}
