//! The IndEDA-style baseline: a flat, connectivity-driven macro placer.
//!
//! This models the behaviour of the commercial floorplanner the paper
//! compares against: it sees only the flattened netlist (no hierarchy, no
//! array/dataflow information), optimizes net-based wirelength with simulated
//! annealing over macro positions, and biases macros towards the die
//! periphery so the core area stays free for standard cells — which is
//! exactly the strategy whose shortcomings motivate HiDaP.

use geometry::{Dbu, Orientation, Point, Rect};
use hidap::legalize::{legalize_macros, MacroFootprint, MacroFootprints};
use hidap::placement::{MacroPlacement, PlacedMacro};
use hidap::HidapError;
use netlist::design::{CellId, CellKind, Design};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the IndEDA-style baseline placer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndEdaConfig {
    /// Simulated-annealing moves per macro per temperature step.
    pub moves_per_macro: usize,
    /// Number of temperature steps.
    pub temperature_steps: usize,
    /// Geometric cooling factor.
    pub cooling: f64,
    /// Weight of the wall-attraction term (0 disables the periphery bias).
    pub wall_weight: f64,
    /// Weight of the overlap penalty.
    pub overlap_weight: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for IndEdaConfig {
    fn default() -> Self {
        Self {
            moves_per_macro: 40,
            temperature_steps: 60,
            cooling: 0.92,
            wall_weight: 0.4,
            overlap_weight: 4.0,
            seed: 1,
        }
    }
}

impl IndEdaConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        Self { moves_per_macro: 12, temperature_steps: 25, ..Self::default() }
    }

    /// The configuration implied by an engine effort tier.
    pub fn for_effort(effort: placer_core::EffortLevel) -> Self {
        match effort {
            placer_core::EffortLevel::Fast => Self::fast(),
            placer_core::EffortLevel::Default => Self::default(),
            placer_core::EffortLevel::High => {
                Self { moves_per_macro: 80, temperature_steps: 90, ..Self::default() }
            }
        }
    }
}

/// The IndEDA-style flat macro placer.
#[derive(Debug, Clone)]
pub struct IndEda {
    config: IndEdaConfig,
}

impl IndEda {
    /// Creates the baseline with the given configuration.
    pub fn new(config: IndEdaConfig) -> Self {
        Self { config }
    }

    /// Runs the baseline flow and returns a legal macro placement.
    ///
    /// # Errors
    ///
    /// Returns [`HidapError::EmptyDie`] / [`HidapError::MacrosExceedDie`] under
    /// the same conditions as the HiDaP flow.
    pub fn run(&self, design: &Design) -> Result<MacroPlacement, HidapError> {
        let die = design.die();
        if die.width() <= 0 || die.height() <= 0 {
            return Err(HidapError::EmptyDie);
        }
        let macros: Vec<CellId> = design.macros().collect();
        let macro_area: i128 = macros.iter().map(|&m| design.cell(m).area()).sum();
        if macro_area > die.area() {
            return Err(HidapError::MacrosExceedDie { macro_area, die_area: die.area() });
        }
        if macros.is_empty() {
            return Ok(MacroPlacement::default());
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let nets = macro_nets(design, &macros);
        let anchors = net_anchors(design, &nets);

        // Initial positions: macros spread on a grid.
        let cols = (macros.len() as f64).sqrt().ceil() as usize;
        let mut state: Vec<(Point, bool)> = macros
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let cell = design.cell(m);
                let col = i % cols;
                let row = i / cols;
                let x = die.llx + (die.width() * col as i64) / cols as i64;
                let y = die.lly + (die.height() * row as i64) / cols as i64;
                let x = x.min(die.urx - cell.width);
                let y = y.min(die.ury - cell.height);
                (Point::new(x.max(die.llx), y.max(die.lly)), false)
            })
            .collect();

        let mut current_cost = self.cost(design, die, &macros, &state, &nets, &anchors);
        let mut best_state = state.clone();
        let mut best_cost = current_cost;
        let mut temperature = current_cost.max(1.0) * 0.05;

        for _ in 0..self.config.temperature_steps {
            for _ in 0..self.config.moves_per_macro * macros.len() {
                let idx = rng.gen_range(0..macros.len());
                let saved = state[idx];
                match rng.gen_range(0..4) {
                    0 | 1 => {
                        // displace
                        let cell = design.cell(macros[idx]);
                        let (w, h) = if state[idx].1 {
                            (cell.height, cell.width)
                        } else {
                            (cell.width, cell.height)
                        };
                        let max_x = (die.urx - w).max(die.llx);
                        let max_y = (die.ury - h).max(die.lly);
                        state[idx].0 = Point::new(
                            rng.gen_range(die.llx..=max_x),
                            rng.gen_range(die.lly..=max_y),
                        );
                    }
                    2 => {
                        // rotate
                        state[idx].1 = !state[idx].1;
                    }
                    _ => {
                        // swap with another macro
                        let other = rng.gen_range(0..macros.len());
                        let tmp = state[idx].0;
                        state[idx].0 = state[other].0;
                        state[other].0 = tmp;
                    }
                }
                let cost = self.cost(design, die, &macros, &state, &nets, &anchors);
                let delta = cost - current_cost;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp() {
                    current_cost = cost;
                    if cost < best_cost {
                        best_cost = cost;
                        best_state = state.clone();
                    }
                } else {
                    state[idx] = saved;
                }
            }
            temperature *= self.config.cooling;
        }

        // Legalize and emit the placement.
        let mut footprints: MacroFootprints = macros
            .iter()
            .zip(&best_state)
            .map(|(&m, &(loc, rotated))| (m, MacroFootprint { location: loc, rotated }))
            .collect();
        legalize_macros(design, die, &mut footprints);
        let mut placed: Vec<PlacedMacro> = footprints
            .iter()
            .map(|(cell, fp)| PlacedMacro {
                cell,
                location: fp.location,
                orientation: if fp.rotated { Orientation::W } else { Orientation::N },
            })
            .collect();
        placed.sort_by_key(|m| m.cell);
        Ok(MacroPlacement { macros: placed, top_blocks: Vec::new() })
    }

    /// Net-based wirelength + periphery bias + overlap penalty.
    fn cost(
        &self,
        design: &Design,
        die: Rect,
        macros: &[CellId],
        state: &[(Point, bool)],
        nets: &[MacroNet],
        anchors: &[Option<Point>],
    ) -> f64 {
        let rects: Vec<Rect> = macros
            .iter()
            .zip(state)
            .map(|(&m, &(loc, rotated))| {
                let c = design.cell(m);
                let (w, h) = if rotated { (c.height, c.width) } else { (c.width, c.height) };
                Rect::from_size(loc.x, loc.y, w, h)
            })
            .collect();
        // HPWL over macro-connected nets (standard cells are invisible to this flow)
        let mut wl = 0.0;
        for (net, anchor) in nets.iter().zip(anchors) {
            let mut pts: Vec<Point> =
                net.macro_indices.iter().map(|&i| rects[i].center()).collect();
            if let Some(a) = anchor {
                pts.push(*a);
            }
            if pts.len() >= 2 {
                if let Some(bb) = Rect::bounding_box(pts.iter().copied()) {
                    wl += (bb.width() + bb.height()) as f64;
                }
            }
        }
        // periphery bias: distance of each macro to the nearest die wall
        let mut wall = 0.0;
        for r in &rects {
            let c = r.center();
            let d = (c.x - die.llx).min(die.urx - c.x).min(c.y - die.lly).min(die.ury - c.y).max(0)
                as f64;
            wall += d;
        }
        // overlap penalty
        let mut overlap = 0.0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                overlap += rects[i].overlap_area(&rects[j]) as f64;
            }
        }
        let die_edge = (die.width() + die.height()) as f64;
        wl + self.config.wall_weight * wall
            + self.config.overlap_weight * overlap / die_edge.max(1.0)
    }
}

impl placer_core::Placer for IndEda {
    fn name(&self) -> &str {
        "indeda"
    }

    fn supports_lambda(&self) -> bool {
        false
    }

    fn place(
        &self,
        req: &placer_core::PlaceRequest<'_>,
        ctx: &mut placer_core::PlaceContext,
    ) -> Result<placer_core::PlaceOutcome, placer_core::PlaceError> {
        use placer_core::{PlaceError, StageEvent, StageTiming};

        req.validate()?;
        if let Some(err) = ctx.interrupted() {
            return Err(err);
        }
        // λ is a dataflow-affinity knob this flat flow does not have
        let mut config = match req.effort {
            Some(effort) => IndEdaConfig::for_effort(effort),
            None => self.config,
        };
        config.seed = req.seed;
        let design = req.effective_design();
        ctx.emit(StageEvent::FlowStarted { flow: "indeda".into(), seed: req.seed, lambda: None });

        let start = std::time::Instant::now();
        let placement = IndEda::new(config).run(design.as_ref()).map_err(PlaceError::from)?;
        let wall_s = start.elapsed().as_secs_f64();
        let mut timings = vec![StageTiming { stage: "anneal".into(), seconds: wall_s }];

        let metrics = req.evaluate.as_ref().map(|eval_cfg| {
            let t = std::time::Instant::now();
            // context-shared evaluator: one Gseq per sweep, no to_map()
            let metrics = ctx.evaluator(*eval_cfg).evaluate(design.as_ref(), &placement);
            timings
                .push(StageTiming { stage: "evaluate".into(), seconds: t.elapsed().as_secs_f64() });
            metrics
        });

        ctx.emit(StageEvent::FlowFinished { wall_s, legal: placement.is_legal(design.as_ref()) });
        Ok(placer_core::PlaceOutcome {
            placement,
            flow: "indeda".into(),
            seed: req.seed,
            lambda: None,
            stage_timings: timings,
            wall_s,
            metrics,
        })
    }
}

/// A net restricted to the pins the flat flow can see: macros and ports.
#[derive(Debug, Clone)]
struct MacroNet {
    macro_indices: Vec<usize>,
    port_positions: Vec<Point>,
}

fn macro_nets(design: &Design, macros: &[CellId]) -> Vec<MacroNet> {
    let mut index_of: netlist::DenseMap<CellId, Option<u32>> =
        netlist::DenseMap::with_len(design.num_cells());
    for (i, &m) in macros.iter().enumerate() {
        index_of[m] = Some(i as u32);
    }
    let mut nets = Vec::new();
    for (_, net) in design.nets() {
        let mut macro_indices = Vec::new();
        let mut port_positions = Vec::new();
        let mut endpoints = Vec::new();
        if let Some(d) = net.driver_cell {
            endpoints.push(d);
        }
        endpoints.extend(net.sink_cells.iter().copied());
        for c in endpoints {
            if design.cell(c).kind == CellKind::Macro {
                if let Some(i) = index_of[c] {
                    macro_indices.push(i as usize);
                }
            }
        }
        if let Some(p) = net.driver_port {
            if let Some(pos) = design.port(p).position {
                port_positions.push(pos);
            }
        }
        for &p in &net.sink_ports {
            if let Some(pos) = design.port(p).position {
                port_positions.push(pos);
            }
        }
        macro_indices.sort_unstable();
        macro_indices.dedup();
        if macro_indices.len() + port_positions.len() >= 2 && !macro_indices.is_empty() {
            nets.push(MacroNet { macro_indices, port_positions });
        }
    }
    nets
}

/// Pre-computed anchor point per net: the centroid of its port pins (the
/// standard-cell pins are unknown to this flow).
fn net_anchors(_design: &Design, nets: &[MacroNet]) -> Vec<Option<Point>> {
    nets.iter()
        .map(|n| {
            if n.port_positions.is_empty() {
                None
            } else {
                let sx: i128 = n.port_positions.iter().map(|p| p.x as i128).sum();
                let sy: i128 = n.port_positions.iter().map(|p| p.y as i128).sum();
                let c = n.port_positions.len() as i128;
                Some(Point::new((sx / c) as Dbu, (sy / c) as Dbu))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::design::DesignBuilder;

    fn design_with_connected_macros() -> Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("a", "RAM", 200, 150, "");
        let c = b.add_macro("c", "RAM", 200, 150, "");
        let e = b.add_macro("e", "RAM", 200, 150, "");
        // a and c are heavily connected; e is isolated
        for i in 0..16 {
            let n = b.add_net(format!("n{i}"));
            b.connect_driver(n, a);
            b.connect_sink(n, c);
        }
        let _ = e;
        b.set_die(Rect::new(0, 0, 2000, 2000));
        b.build()
    }

    #[test]
    fn produces_legal_placement() {
        let d = design_with_connected_macros();
        let p = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        assert_eq!(p.macros.len(), 3);
        assert!(p.is_legal(&d));
    }

    #[test]
    fn connected_macros_end_up_closer_than_unconnected() {
        let d = design_with_connected_macros();
        let p = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        let a = d.find_cell("a").unwrap();
        let c = d.find_cell("c").unwrap();
        let e = d.find_cell("e").unwrap();
        let ra = p.rect_of(a, &d).unwrap();
        let rc = p.rect_of(c, &d).unwrap();
        let re = p.rect_of(e, &d).unwrap();
        let d_ac = ra.center_distance(&rc);
        let d_ae = ra.center_distance(&re);
        assert!(d_ac <= d_ae, "connected pair should not be farther apart than the isolated macro (d_ac={d_ac}, d_ae={d_ae})");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let d = design_with_connected_macros();
        let a = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        let b = IndEda::new(IndEdaConfig::fast()).run(&d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_die_is_error() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("a", "RAM", 10, 10, "");
        let d = b.build();
        assert!(IndEda::new(IndEdaConfig::fast()).run(&d).is_err());
    }

    #[test]
    fn wall_bias_pushes_macros_towards_periphery() {
        // a single unconnected macro: with a strong wall weight it should not
        // sit in the die center
        let mut b = DesignBuilder::new("t");
        b.add_macro("a", "RAM", 100, 100, "");
        b.set_die(Rect::new(0, 0, 2000, 2000));
        let d = b.build();
        let cfg = IndEdaConfig { wall_weight: 10.0, ..IndEdaConfig::fast() };
        let p = IndEda::new(cfg).run(&d).unwrap();
        let m = d.find_cell("a").unwrap();
        let center = p.rect_of(m, &d).unwrap().center();
        let die_center = d.die().center();
        let dist_from_center = center.manhattan_distance(die_center);
        assert!(
            dist_from_center > 500,
            "macro should be pushed away from the die center, got {center}"
        );
    }
}
