//! The handFP proxy: an effort-unconstrained oracle flow.
//!
//! The paper's handFP reference is a floorplan refined over 2–4 weeks by
//! expert back-end engineers.  As a reproducible stand-in, this flow spends a
//! large compute budget instead of human effort: it runs the dataflow-aware
//! placer for every combination of a seed set and a λ set at high annealing
//! effort, evaluates each candidate with the shared evaluation pipeline, and
//! keeps the placement with the lowest measured wirelength.

use eval::{evaluate_placement, EvalConfig};
use hidap::{HidapConfig, HidapError, HidapFlow, MacroPlacement};
use netlist::design::Design;
use serde::{Deserialize, Serialize};

/// Configuration of the handFP proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandFpConfig {
    /// Seeds to try.
    pub seeds: Vec<u64>,
    /// λ values to try.
    pub lambdas: Vec<f64>,
    /// Base placer configuration (effort knobs); seed and λ are overridden.
    pub base: HidapConfig,
    /// Evaluation settings used to pick the winner.
    pub eval: EvalConfig,
}

impl Default for HandFpConfig {
    fn default() -> Self {
        Self {
            seeds: vec![1, 2, 3, 4],
            lambdas: vec![0.2, 0.5, 0.8],
            base: HidapConfig::high_effort(),
            eval: EvalConfig::standard(),
        }
    }
}

impl HandFpConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        Self {
            seeds: vec![1, 2],
            lambdas: vec![0.2, 0.8],
            base: HidapConfig::fast(),
            eval: EvalConfig::standard(),
        }
    }
}

/// The handFP oracle flow.
#[derive(Debug, Clone)]
pub struct HandFp {
    config: HandFpConfig,
}

impl HandFp {
    /// Creates the oracle flow with the given configuration.
    pub fn new(config: HandFpConfig) -> Self {
        Self { config }
    }

    /// Runs every candidate configuration and returns the placement with the
    /// lowest measured wirelength, together with that wirelength in meters.
    ///
    /// # Errors
    ///
    /// Propagates the first placement error if *every* candidate fails;
    /// otherwise failed candidates are simply skipped.
    pub fn run(&self, design: &Design) -> Result<(MacroPlacement, f64), HidapError> {
        let mut best: Option<(MacroPlacement, f64)> = None;
        let mut first_error: Option<HidapError> = None;
        for &seed in &self.config.seeds {
            for &lambda in &self.config.lambdas {
                let config = HidapConfig {
                    seed,
                    lambda,
                    ..self.config.base.clone()
                };
                match HidapFlow::new(config).run(design) {
                    Ok(placement) => {
                        let metrics = evaluate_placement(design, &placement.to_map(), &self.config.eval);
                        let wl = metrics.wirelength_m;
                        if best.as_ref().map(|(_, b)| wl < *b).unwrap_or(true) {
                            best = Some((placement, wl));
                        }
                    }
                    Err(e) => {
                        first_error.get_or_insert(e);
                    }
                }
            }
        }
        match best {
            Some(result) => Ok(result),
            None => Err(first_error.unwrap_or_else(|| HidapError::Internal("no candidates evaluated".into()))),
        }
    }

    /// Number of candidate runs the configuration will perform.
    pub fn num_candidates(&self) -> usize {
        self.config.seeds.len() * self.config.lambdas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    fn small_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..8 {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn returns_legal_best_candidate() {
        let d = small_design();
        let (placement, wl) = HandFp::new(HandFpConfig::fast()).run(&d).unwrap();
        assert_eq!(placement.macros.len(), 2);
        assert!(placement.is_legal(&d));
        assert!(wl > 0.0);
    }

    #[test]
    fn candidate_count_is_seeds_times_lambdas() {
        let oracle = HandFp::new(HandFpConfig::fast());
        assert_eq!(oracle.num_candidates(), 4);
    }

    #[test]
    fn oracle_not_worse_than_single_run() {
        let d = small_design();
        let (_, oracle_wl) = HandFp::new(HandFpConfig::fast()).run(&d).unwrap();
        // a single run with one of the candidate configurations
        let single = HidapFlow::new(HidapConfig::fast().with_lambda(0.2).with_seed(1)).run(&d).unwrap();
        let single_wl = evaluate_placement(&d, &single.to_map(), &EvalConfig::standard()).wirelength_m;
        assert!(oracle_wl <= single_wl + 1e-12);
    }

    #[test]
    fn error_propagated_when_all_candidates_fail() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("huge", "RAM", 1000, 1000, "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let d = b.build();
        assert!(HandFp::new(HandFpConfig::fast()).run(&d).is_err());
    }
}
