//! The handFP proxy: an effort-unconstrained oracle flow.
//!
//! The paper's handFP reference is a floorplan refined over 2–4 weeks by
//! expert back-end engineers.  As a reproducible stand-in, this flow spends a
//! large compute budget instead of human effort: it sweeps the dataflow-aware
//! placer over a seed×λ grid at high annealing effort and keeps the placement
//! with the lowest measured wirelength.
//!
//! The sweep itself is a thin composition over the engine's
//! [`BatchRunner`]: the grid cells run in parallel across all cores, and the
//! winner is picked deterministically (lowest wirelength, ties to the lowest
//! grid index) regardless of the worker count.

use eval::EvalConfig;
use hidap::{HidapConfig, HidapError, HidapFlow, MacroPlacement};
use netlist::design::Design;
use placer_core::{
    BatchGrid, BatchOutcome, BatchRunner, EffortLevel, PlaceContext, PlaceError, PlaceOutcome,
    PlaceRequest, Placer, WirelengthObjective,
};
use serde::{Deserialize, Serialize};

/// Configuration of the handFP proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandFpConfig {
    /// Seeds to try.
    pub seeds: Vec<u64>,
    /// λ values to try.
    pub lambdas: Vec<f64>,
    /// Base placer configuration (effort knobs); seed and λ are overridden.
    pub base: HidapConfig,
    /// Evaluation settings used to pick the winner.
    pub eval: EvalConfig,
    /// Worker threads for the sweep (0 = all available cores).
    pub jobs: usize,
}

impl Default for HandFpConfig {
    fn default() -> Self {
        Self {
            seeds: vec![1, 2, 3, 4],
            lambdas: vec![0.2, 0.5, 0.8],
            base: HidapConfig::high_effort(),
            eval: EvalConfig::standard(),
            jobs: 0,
        }
    }
}

impl HandFpConfig {
    /// A reduced-effort configuration for tests.
    pub fn fast() -> Self {
        Self {
            seeds: vec![1, 2],
            lambdas: vec![0.2, 0.8],
            base: HidapConfig::fast(),
            ..Self::default()
        }
    }

    /// The configuration implied by an engine effort tier.
    pub fn for_effort(effort: EffortLevel) -> Self {
        match effort {
            EffortLevel::Fast => Self {
                seeds: vec![1, 2],
                lambdas: vec![0.2, 0.5, 0.8],
                base: HidapConfig::fast(),
                ..Self::default()
            },
            EffortLevel::Default => Self {
                seeds: vec![1, 2, 3],
                lambdas: vec![0.2, 0.5, 0.8],
                base: HidapConfig::default(),
                ..Self::default()
            },
            EffortLevel::High => Self::default(),
        }
    }
}

/// The handFP oracle flow.
#[derive(Debug, Clone)]
pub struct HandFp {
    config: HandFpConfig,
}

impl HandFp {
    /// Creates the oracle flow with the given configuration.
    pub fn new(config: HandFpConfig) -> Self {
        Self { config }
    }

    /// The flow configuration.
    pub fn config(&self) -> &HandFpConfig {
        &self.config
    }

    /// Runs the full seed×λ sweep through the engine's [`BatchRunner`],
    /// returning the winner and every per-cell summary.
    ///
    /// # Errors
    ///
    /// Fails only when every candidate fails (first grid-order error), the
    /// grid is empty, or the context cancels the sweep.
    pub fn run_batch(
        &self,
        config: &HandFpConfig,
        design: &Design,
        ctx: &mut PlaceContext,
    ) -> Result<BatchOutcome, PlaceError> {
        let placer = HidapFlow::new(config.base.clone());
        let grid = BatchGrid::new(config.seeds.clone(), config.lambdas.clone());
        let runner = BatchRunner::new()
            .with_jobs(config.jobs)
            .with_objective(Box::new(WirelengthObjective { eval: config.eval }));
        runner.run(&placer, &PlaceRequest::new(design), &grid, ctx)
    }

    /// Runs every candidate configuration (in parallel) and returns the
    /// placement with the lowest measured wirelength, together with that
    /// wirelength in meters.
    ///
    /// # Errors
    ///
    /// Propagates the first placement error if *every* candidate fails;
    /// otherwise failed candidates are simply skipped.
    pub fn run(&self, design: &Design) -> Result<(MacroPlacement, f64), HidapError> {
        match self.run_batch(&self.config, design, &mut PlaceContext::new()) {
            Ok(batch) => Ok((batch.winner.placement, batch.winner_score)),
            Err(PlaceError::Flow(e)) => Err(e),
            Err(PlaceError::Cancelled) | Err(PlaceError::DeadlineExceeded) => {
                Err(HidapError::Cancelled)
            }
            Err(other) => Err(HidapError::Internal(other.to_string())),
        }
    }

    /// Number of candidate runs the configuration will perform.
    pub fn num_candidates(&self) -> usize {
        self.config.seeds.len() * self.config.lambdas.len()
    }
}

/// The oracle's engine adapter. The flow's identity is its configured
/// seed×λ grid, so `req.seed` / `req.lambda` do not apply: the request
/// selects the design, die and effort tier, and the grid does the rest.
impl Placer for HandFp {
    fn name(&self) -> &str {
        "handfp"
    }

    fn supports_lambda(&self) -> bool {
        false
    }

    fn is_composite(&self) -> bool {
        true
    }

    fn place(
        &self,
        req: &PlaceRequest<'_>,
        ctx: &mut PlaceContext,
    ) -> Result<PlaceOutcome, PlaceError> {
        req.validate()?;
        let config = match req.effort {
            // effort tiers pick the grid and base placer; the runner knobs
            // (worker count, winner evaluation) stay as configured
            Some(effort) => HandFpConfig {
                jobs: self.config.jobs,
                eval: self.config.eval,
                ..HandFpConfig::for_effort(effort)
            },
            None => self.config.clone(),
        };
        let design = req.effective_design();
        let batch = self.run_batch(&config, design.as_ref(), ctx)?;
        let mut outcome = batch.winner;
        outcome.flow = "handfp".into();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eval::Evaluator;
    use geometry::Rect;
    use netlist::design::DesignBuilder;

    fn small_design() -> Design {
        let mut b = DesignBuilder::new("t");
        let a = b.add_macro("u_a/ram", "RAM", 200, 150, "u_a");
        let c = b.add_macro("u_b/ram", "RAM", 200, 150, "u_b");
        for i in 0..8 {
            let f = b.add_flop(format!("u_x/pipe_reg[{i}]"), "u_x");
            let n0 = b.add_net(format!("n0_{i}"));
            let n1 = b.add_net(format!("n1_{i}"));
            b.connect_driver(n0, a);
            b.connect_sink(n0, f);
            b.connect_driver(n1, f);
            b.connect_sink(n1, c);
        }
        b.set_die(Rect::new(0, 0, 2000, 1500));
        b.build()
    }

    #[test]
    fn returns_legal_best_candidate() {
        let d = small_design();
        let (placement, wl) = HandFp::new(HandFpConfig::fast()).run(&d).unwrap();
        assert_eq!(placement.macros.len(), 2);
        assert!(placement.is_legal(&d));
        assert!(wl > 0.0);
    }

    #[test]
    fn candidate_count_is_seeds_times_lambdas() {
        let oracle = HandFp::new(HandFpConfig::fast());
        assert_eq!(oracle.num_candidates(), 4);
    }

    #[test]
    fn oracle_not_worse_than_single_run() {
        let d = small_design();
        let (_, oracle_wl) = HandFp::new(HandFpConfig::fast()).run(&d).unwrap();
        // a single run with one of the candidate configurations
        let single =
            HidapFlow::new(HidapConfig::fast().with_lambda(0.2).with_seed(1)).run(&d).unwrap();
        let single_wl = Evaluator::standard().evaluate(&d, &single).wirelength_m;
        assert!(oracle_wl <= single_wl + 1e-12);
    }

    #[test]
    fn error_propagated_when_all_candidates_fail() {
        let mut b = DesignBuilder::new("t");
        b.add_macro("huge", "RAM", 1000, 1000, "");
        b.set_die(Rect::new(0, 0, 100, 100));
        let d = b.build();
        assert!(HandFp::new(HandFpConfig::fast()).run(&d).is_err());
    }

    #[test]
    fn serial_and_parallel_sweeps_agree() {
        let d = small_design();
        let serial = HandFp::new(HandFpConfig { jobs: 1, ..HandFpConfig::fast() }).run(&d).unwrap();
        let parallel =
            HandFp::new(HandFpConfig { jobs: 4, ..HandFpConfig::fast() }).run(&d).unwrap();
        assert_eq!(serial.0, parallel.0, "winner placement must not depend on worker count");
        assert_eq!(serial.1, parallel.1);
    }

    #[test]
    fn placer_trait_returns_the_sweep_winner() {
        let d = small_design();
        let oracle = HandFp::new(HandFpConfig::fast());
        let via_trait = oracle.place(&PlaceRequest::new(&d), &mut PlaceContext::new()).unwrap();
        let (direct, wl) = oracle.run(&d).unwrap();
        assert_eq!(via_trait.placement, direct);
        assert_eq!(via_trait.flow, "handfp");
        assert_eq!(via_trait.metrics.expect("objective evaluates").wirelength_m, wl);
    }
}
