//! Baseline macro-placement flows used as comparison points for HiDaP.
//!
//! The paper compares against two references (Sect. V):
//!
//! * **IndEDA** — a state-of-the-art commercial floorplanner run at high
//!   effort.  Reproduced here by [`indeda::IndEda`]: a *flat*,
//!   connectivity-driven simulated-annealing macro placer that ignores the
//!   RTL hierarchy and the array/dataflow structure, models connectivity at
//!   the net level only, and prefers placing macros along the die periphery
//!   (the de-facto industrial strategy the paper describes).
//! * **handFP** — floorplans handcrafted over weeks by expert back-end
//!   engineers.  Reproduced here by [`handfp::HandFp`]: an effort-unconstrained
//!   "oracle" flow that runs the dataflow-aware placer many times (multiple
//!   seeds, multiple λ values, high annealing effort) and keeps the result
//!   with the best measured wirelength — playing the same role of a
//!   near-optimal reference point.

pub mod handfp;
pub mod indeda;

pub use handfp::{HandFp, HandFpConfig};
pub use indeda::{IndEda, IndEdaConfig};
