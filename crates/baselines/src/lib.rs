//! Baseline macro-placement flows used as comparison points for HiDaP.
//!
//! The paper compares against two references (Sect. V):
//!
//! * **IndEDA** — a state-of-the-art commercial floorplanner run at high
//!   effort.  Reproduced here by [`indeda::IndEda`]: a *flat*,
//!   connectivity-driven simulated-annealing macro placer that ignores the
//!   RTL hierarchy and the array/dataflow structure, models connectivity at
//!   the net level only, and prefers placing macros along the die periphery
//!   (the de-facto industrial strategy the paper describes).
//! * **handFP** — floorplans handcrafted over weeks by expert back-end
//!   engineers.  Reproduced here by [`handfp::HandFp`]: an effort-unconstrained
//!   "oracle" flow that runs the dataflow-aware placer many times (multiple
//!   seeds, multiple λ values, high annealing effort) and keeps the result
//!   with the best measured wirelength — playing the same role of a
//!   near-optimal reference point.
//!
//! Both baselines (and HiDaP itself) are invocable through the unified
//! engine API: [`default_registry`] returns a [`placer_core::FlowRegistry`]
//! with `hidap`, `indeda` and `handfp` registered, so front ends resolve
//! flows by name.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod handfp;
pub mod indeda;

pub use handfp::{HandFp, HandFpConfig};
pub use indeda::{AnnealTrace, IndEda, IndEdaConfig};

/// The registry with every flow this workspace ships: `hidap`, `indeda` and
/// `handfp`, each constructed at its default effort (requests can override
/// effort per run).
pub fn default_registry() -> placer_core::FlowRegistry {
    let mut registry = placer_core::builtin_registry();
    registry.register("indeda", || Box::new(IndEda::new(IndEdaConfig::default())));
    registry.register("handfp", || Box::new(HandFp::new(HandFpConfig::default())));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_three_flows() {
        let registry = default_registry();
        assert_eq!(
            registry.names(),
            vec!["handfp".to_string(), "hidap".to_string(), "indeda".to_string()]
        );
        for name in registry.names() {
            assert_eq!(registry.create(&name).unwrap().name(), name);
        }
    }
}
