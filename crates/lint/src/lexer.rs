//! A hand-rolled Rust lexer: borrowed-`&str` tokens with exact byte spans.
//!
//! Built in the same style as the streaming Verilog/LEF/DEF lexers in
//! `netlist` — the token stream borrows the source text, nothing is
//! materialized beyond the token table itself. The lexer is *total*: any
//! byte sequence tokenizes without panicking (unterminated strings and
//! comments run to end of file), and the spans partition the source exactly
//! — every byte is either inside exactly one token or inter-token
//! whitespace. The lexer proptest in `tests/lexer_proptest.rs` pins both
//! properties.
//!
//! Handled correctly (the cases that break naive regex scanners):
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary hash fences (`r##"..."##`), including the
//!   byte and C variants (`br#"…"#`, `cr#"…"#`),
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\''`, `b'x'`),
//! * raw identifiers (`r#match`),
//! * float literals vs range expressions (`1.5` vs `0..10` vs `1.max(2)`).

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules match on the text).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Any string literal: cooked, raw, byte, or C, with its quotes.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (integer or float, suffix included).
    Num,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// A `//` comment, text until (not including) the newline.
    LineComment,
    /// A `/* */` comment, nesting-matched, terminator included.
    BlockComment,
}

/// One token: kind + byte span + 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text, borrowed from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Internal cursor state shared by the scanning helpers.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, k: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(k)
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes chars while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// How a string-literal prefix at the cursor looks: total prefix length in
/// bytes up to and including the opening quote, and the raw-fence hash count
/// (`None` for cooked strings).
fn string_prefix(rest: &str) -> Option<(usize, Option<usize>)> {
    let mut chars = rest.chars();
    let first = chars.next()?;
    // optional b / c byte- and C-string markers before the r or quote
    let (marker_len, after_marker) = match first {
        'b' | 'c' => (1, chars.clone()),
        _ => (0, rest.chars()),
    };
    let mut after = after_marker;
    match after.next() {
        Some('"') if marker_len == 1 => Some((2, None)),
        Some('r') => {
            // raw fence: r, hashes, then a quote
            let mut hashes = 0;
            for c in after {
                match c {
                    '#' => hashes += 1,
                    '"' => return Some((marker_len + 1 + hashes + 1, Some(hashes))),
                    _ => return None,
                }
            }
            None
        }
        Some('"') => Some((1, None)),
        _ => None,
    }
}

/// Tokenizes Rust source. Never panics; unterminated literals and comments
/// extend to end of input.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = match c {
            c if c.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek_at(1) == Some('/') => {
                cur.eat_while(|c| c != '\n');
                TokenKind::LineComment
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            '"' => {
                scan_cooked_string(&mut cur);
                TokenKind::Str
            }
            '\'' => scan_char_or_lifetime(&mut cur),
            c if is_ident_start(c) || c == 'r' => {
                let rest = &src[cur.pos..];
                if let Some((prefix_len, fence)) = string_prefix(rest) {
                    for _ in 0..prefix_len {
                        // the prefix is ASCII, one bump per byte
                        cur.bump();
                    }
                    match fence {
                        Some(hashes) => scan_raw_string(&mut cur, hashes),
                        None => scan_cooked_string_body(&mut cur),
                    }
                    TokenKind::Str
                } else if c == 'b' && rest.len() >= 2 && rest.as_bytes()[1] == b'\'' {
                    // byte char literal b'x'
                    cur.bump();
                    cur.bump();
                    scan_char_body(&mut cur);
                    TokenKind::Char
                } else if c == 'r'
                    && rest.len() >= 2
                    && rest.as_bytes()[1] == b'#'
                    && rest.chars().nth(2).is_some_and(is_ident_start)
                {
                    // raw identifier r#match
                    cur.bump();
                    cur.bump();
                    cur.eat_while(is_ident_continue);
                    TokenKind::Ident
                } else {
                    cur.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
            }
            c if c.is_ascii_digit() => {
                cur.eat_while(is_ident_continue);
                // a float's fractional part: a dot followed by a digit (so
                // `0..10` and `1.max(2)` stay ranges and method calls)
                if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    cur.bump();
                    cur.eat_while(is_ident_continue);
                }
                TokenKind::Num
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token { kind, start, end: cur.pos, line });
    }
    tokens
}

/// Scans a cooked string from its opening quote (cursor on the `"`).
fn scan_cooked_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    scan_cooked_string_body(cur);
}

/// Scans a cooked string body until its closing quote (escape-aware).
fn scan_cooked_string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Scans a raw string body until `"` followed by `hashes` fence hashes.
fn scan_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut matched = 0;
            while matched < hashes && cur.peek() == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                break;
            }
        }
    }
}

/// Scans the remainder of a char literal after its opening quote.
fn scan_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime); cursor on the `'`.
fn scan_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            scan_char_body(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — not valid Rust; consume both quotes and move on
            cur.bump();
            TokenKind::Char
        }
        Some(_) => {
            // 'x' where x is not ident-like: digit, punctuation, emoji...
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Punct
            }
        }
        None => TokenKind::Punct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(&str, TokenKind)> {
        tokenize(src).iter().map(|t| (t.text(src), t.kind)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let src = "let mut x = a::b(1, 2.5);";
        let toks = texts(src);
        assert_eq!(toks[0], ("let", TokenKind::Ident));
        assert_eq!(toks[1], ("mut", TokenKind::Ident));
        assert_eq!(toks[3], ("=", TokenKind::Punct));
        assert_eq!(toks[5], (":", TokenKind::Punct));
        assert!(toks.contains(&("2.5", TokenKind::Num)));
    }

    #[test]
    fn ranges_are_not_floats_and_methods_are_not_fractions() {
        let src = "0..10 1.max(2) 3.5e2";
        let toks = texts(src);
        assert_eq!(toks[0], ("0", TokenKind::Num));
        assert_eq!(toks[1], (".", TokenKind::Punct));
        assert_eq!(toks[2], (".", TokenKind::Punct));
        assert_eq!(toks[3], ("10", TokenKind::Num));
        assert_eq!(toks[4], ("1", TokenKind::Num));
        assert_eq!(toks[5], (".", TokenKind::Punct));
        assert_eq!(toks[6], ("max", TokenKind::Ident));
        assert!(toks.contains(&("3.5e2", TokenKind::Num)));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "a /* outer /* inner */ still */ b";
        let toks = texts(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].1, TokenKind::BlockComment);
        assert_eq!(toks[2], ("b", TokenKind::Ident));
    }

    #[test]
    fn raw_strings_with_fences_and_variants() {
        let src = r####"x r#"a "quoted" b"# br##"bytes "#" more"## c"cstr" y"####;
        let toks = texts(src);
        assert_eq!(toks[0], ("x", TokenKind::Ident));
        assert_eq!(toks[1].1, TokenKind::Str);
        assert!(toks[1].0.starts_with("r#\""));
        assert_eq!(toks[2].1, TokenKind::Str);
        assert!(toks[2].0.starts_with("br##"));
        assert_eq!(toks[3].1, TokenKind::Str);
        assert!(toks[3].0.starts_with("c\""));
        assert_eq!(toks[4], ("y", TokenKind::Ident));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let src = "'a' 'static '\\'' b'x' &'a str 'label: loop {}";
        let toks = texts(src);
        assert_eq!(toks[0], ("'a'", TokenKind::Char));
        assert_eq!(toks[1], ("'static", TokenKind::Lifetime));
        assert_eq!(toks[2], ("'\\''", TokenKind::Char));
        assert_eq!(toks[3], ("b'x'", TokenKind::Char));
        assert_eq!(toks[5], ("'a", TokenKind::Lifetime));
        assert_eq!(toks[7], ("'label", TokenKind::Lifetime));
    }

    #[test]
    fn raw_identifiers() {
        let src = "r#match r#fn normal";
        let toks = texts(src);
        assert_eq!(toks[0], ("r#match", TokenKind::Ident));
        assert_eq!(toks[1], ("r#fn", TokenKind::Ident));
        assert_eq!(toks[2], ("normal", TokenKind::Ident));
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panicking() {
        for src in ["\"abc", "r#\"abc", "/* never closed", "'x", "b'"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = tokenize(src);
        let lines: Vec<(String, usize)> =
            toks.iter().map(|t| (t.text(src).to_string(), t.line)).collect();
        assert_eq!(lines[0], ("a".into(), 1));
        assert_eq!(lines[1], ("\"two\nlines\"".into(), 2));
        assert_eq!(lines[2], ("b".into(), 4));
        assert_eq!(lines[4], ("e".into(), 5));
    }

    #[test]
    fn spans_partition_the_source() {
        let src = "fn f() -> Vec<u8> { vec![0; 3] } // tail\n";
        let toks = tokenize(src);
        let mut pos = 0;
        for t in &toks {
            assert!(t.start >= pos, "overlap at {}", t.start);
            assert!(src[pos..t.start].chars().all(char::is_whitespace));
            pos = t.end;
        }
        assert!(src[pos..].chars().all(char::is_whitespace));
    }
}
