//! `hidap-lint`: a workspace invariant checker.
//!
//! The placer's value proposition is *bit-identical determinism* (dense ≡
//! hashed adjacency, warm ≡ cold placements, byte-identical daemon
//! transcripts) and a daemon that survives arbitrary input. Those are
//! semantic invariants — `rustc` and clippy cannot see them. This crate
//! enforces the source-level patterns that protect them:
//!
//! * `hash-iter` (R1) — no `HashMap`/`HashSet` iteration in non-test code of
//!   the deterministic crates; iteration order would leak into results.
//! * `daemon-panic` (R2) — no `unwrap`/`expect`/`panic!`/slice-index on the
//!   daemon request path; malformed frames must become `err` frames.
//! * `wall-clock` (R3) — no `Instant::now`/`SystemTime::now` outside the
//!   sanctioned timing crate (`bench`); wall-clock reads elsewhere are
//!   determinism hazards.
//! * `heap-size` (R4) — public structs with heap-owning fields in the
//!   byte-accounted crates must `impl HeapSize`, or the daemon's memory
//!   budget silently undercounts.
//! * `test-env` (R5) — tests must not sleep, read the environment, or
//!   depend on machine thread counts unless marked `#[ignore]`.
//! * `fs-scope` (R6) — no filesystem writes in non-test code of the
//!   deterministic crates outside the sanctioned spill module; disk is a
//!   side channel that would let results vary with machine state.
//!
//! Any finding can be waived in place with a pragma comment that *must*
//! carry a reason:
//!
//! ```text
//! // lint:allow(hash-iter): consumers sort the result before use
//! ```
//!
//! A trailing pragma applies to its own line; a standalone pragma comment
//! applies to the next line of code. A pragma with an unknown rule name or
//! a missing reason is itself a finding (rule `pragma`).
//!
//! The analysis is token-based: `lexer` hand-rolls a total Rust tokenizer
//! (raw strings, nested block comments, char-vs-lifetime) in the same
//! borrowed-`&str` style as the streaming netlist parsers, and the rules
//! pattern-match on the token stream with `#[cfg(test)]`/`#[test]`/
//! `#[ignore]` region tracking. See `docs/LINTS.md` for the full rationale
//! and scoping of each rule.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout)]

pub mod lexer;

use lexer::{tokenize, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file presented to [`analyze`]. `path` is workspace-relative
/// with `/` separators — rule scoping keys off it.
#[derive(Debug, Clone)]
pub struct FileInput {
    pub path: String,
    pub text: String,
}

/// One rule violation. Renders as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A rule's name and documentation, surfaced by `--explain`.
pub struct Rule {
    pub name: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// The rule set. `pragma` is the meta-rule for malformed waivers; it cannot
/// itself be waived.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-iter",
        summary: "no HashMap/HashSet iteration in non-test code of deterministic crates",
        explain: "\
hash-iter (R1): iteration over HashMap/HashSet in deterministic crates.

Scope: non-test src code of crates hidap, eval, graphs, placer-core, netlist.

HashMap and HashSet iterate in randomized (or at best unspecified) order, so
any result assembled by walking one is free to differ run-to-run. The repo's
contract is bit-identical output: dense-vs-hashmap equality tests, warm==cold
ECO placements, byte-identical daemon transcripts. Hash lookups are fine;
it is only *iteration* (for-loops, .iter()/.keys()/.values()/.drain()/...)
that leaks ordering into results.

Fix: use BTreeMap/BTreeSet or a dense index keyed by a stable id, or sort
the iteration output before it can influence anything observable, then waive
the site with // lint:allow(hash-iter): <why the order cannot escape>.",
    },
    Rule {
        name: "daemon-panic",
        summary: "no unwrap/expect/panic!/slice-index on the daemon request path",
        explain: "\
daemon-panic (R2): panics reachable from a client request kill the daemon.

Scope: non-test code of crates/server/src/* and placer-core's service.rs and
scheduler.rs — everything between frame decode and job completion.

`hidap --serve` promises that a malformed or hostile frame produces a
structured `err code=...` frame and the session lives on. A stray .unwrap(),
.expect(), panic!/unreachable!/todo!, or slice index on that path converts
bad input into a dead daemon for every connected client. The lint flags all
of them, including `xs[i]` indexing (use .get() and map None to a typed
PlaceError).

Fix: return PlaceError (service/scheduler) or write an err frame (session),
or prove the invariant locally and waive with
// lint:allow(daemon-panic): <why this cannot panic / is pre-validated>.",
    },
    Rule {
        name: "wall-clock",
        summary: "no Instant::now/SystemTime::now outside sanctioned timing code",
        explain: "\
wall-clock (R3): ambient clock reads are determinism hazards.

Scope: non-test src code of every crate except `bench` (the sanctioned
timing harness).

A wall-clock read that influences placement (timeouts, time-based seeds,
early exits) makes results machine- and load-dependent. Reads that only feed
*reporting* fields (the wall_s numbers in flow reports) are legitimate but
must be visibly declared, so each such site carries a pragma stating that
the value is report-only.

Fix: move timing into bench, thread a caller-supplied clock, or waive with
// lint:allow(wall-clock): <why the value cannot influence results>.",
    },
    Rule {
        name: "heap-size",
        summary: "heap-owning pub structs in accounted crates must impl HeapSize",
        explain: "\
heap-size (R4): byte-accounting completeness for the daemon's memory budget.

Scope: public structs in the accounted crates (netlist, graphs) whose fields
own heap memory (Vec, String, Box, Arc, HashMap, ...).

The DesignStore admission control and artifact-cache eviction decisions are
driven by HeapSize::heap_bytes. A new heap-owning type without an impl makes
every design that embeds it look smaller than it is, and the daemon
over-admits until the OOM killer arbitrates. The lint cross-references every
`pub struct` against `impl HeapSize for ...` within the crate.

Fix: implement HeapSize (sum the owned buffers), or — for short-lived parser
transients that never reach the store — waive with
// lint:allow(heap-size): <why this type is never byte-accounted> placed
directly above the `pub struct` line.",
    },
    Rule {
        name: "test-env",
        summary: "no sleep/env/thread-count reads in non-#[ignore] tests",
        explain: "\
test-env (R5): tests that consult the machine are flaky by construction.

Scope: test code only — files under tests/ and #[cfg(test)]/#[test] regions
— excluding functions marked #[ignore].

thread::sleep() races the scheduler, std::env::var() couples the test to
the invoking shell, and available_parallelism()/num_cpus make assertions
machine-dependent. Under CI load each becomes an intermittent failure that
erodes trust in the suite exactly where determinism is the product.

Fix: replace sleeps with explicit synchronization (channels, joins), inject
configuration instead of reading env, pin thread counts; or mark the test
#[ignore] (opt-in soak tests), or waive with
// lint:allow(test-env): <why this read cannot flake>.",
    },
    Rule {
        name: "fs-scope",
        summary: "no filesystem writes in deterministic crates outside the spill module",
        explain: "\
fs-scope (R6): ambient filesystem writes are determinism and hygiene hazards.

Scope: non-test src code of crates hidap, eval, graphs, placer-core, netlist
— except crates/eval/src/spill.rs, the sanctioned spill tier (its module
header declares the exemption; see docs/MEMORY.md).

The placer's contract is that identical inputs give bit-identical outputs.
A crate that writes files on its own (caches, scratch state, logs) couples
results to whatever the disk held from a previous run, and scatters state
the daemon's memory budget cannot see. All persistence flows through
eval::SpillTier, which is content-addressed, checksummed, and fails open:
a bad file degrades to a rebuild, never a result change. The lint flags
fs::write/create_dir*/remove_*/rename/copy/hard_link/set_permissions,
File::create/create_new/options, and OpenOptions construction.

Fix: route the write through eval::SpillTier (or return data to a caller
that owns I/O, e.g. the cli crate), or waive a provably inert site with
// lint:allow(fs-scope): <why this write cannot influence results>.",
    },
    Rule {
        name: "pragma",
        summary: "lint:allow pragmas must name a real rule and carry a reason",
        explain: "\
pragma: the waiver syntax is itself checked.

A waiver is // lint:allow(<rule>): <reason>. The rule must be one of the
real rule names and the reason must be non-empty — an unexplained waiver is
worse than the violation, because it silences the alarm without recording
why that is safe. Malformed pragmas (unknown rule, missing `: reason`) are
findings under this rule and cannot be waived.",
    },
];

/// Looks a rule up by name.
pub fn rule_named(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Crates whose results must be bit-identical run-to-run (R1 scope).
const DETERMINISTIC_CRATES: &[&str] = &["hidap", "eval", "graphs", "placer-core", "netlist"];

/// Crates participating in `HeapSize` byte accounting (R4 scope).
const ACCOUNTED_CRATES: &[&str] = &["netlist", "graphs"];

/// Field types that own heap memory (R4).
const HEAP_OWNING_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "Arc", "Rc", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
    "PathBuf",
];

/// Methods whose call on a hash collection observes iteration order (R1).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// `std::fs` free functions that mutate the filesystem (R6). Reads are fine
/// — only writes scatter state a later run could observe.
const FS_WRITE_FNS: &[&str] = &[
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "hard_link",
    "set_permissions",
];

/// The one module in the deterministic crates sanctioned to touch disk (R6).
const SPILL_MODULE: &str = "crates/eval/src/spill.rs";

/// Keywords that may legitimately precede a `[` without it being an index
/// expression (`impl Foo for [T]`, `return [a, b]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "else", "enum", "extern", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "use", "where", "while", "yield",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirKind {
    Src,
    Tests,
    Examples,
    Benches,
}

fn crate_of(path: &str) -> &str {
    match path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(""),
        None => "hidap-repro",
    }
}

fn dir_kind(path: &str) -> DirKind {
    let rel = match path.strip_prefix("crates/") {
        Some(rest) => rest.split_once('/').map(|(_, r)| r).unwrap_or(rest),
        None => path,
    };
    if rel.starts_with("tests/") {
        DirKind::Tests
    } else if rel.starts_with("examples/") {
        DirKind::Examples
    } else if rel.starts_with("benches/") {
        DirKind::Benches
    } else {
        DirKind::Src
    }
}

fn is_comment(t: &Token) -> bool {
    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// The comment-stripped token stream of one file, with text access.
struct Code<'a> {
    toks: Vec<Token>,
    src: &'a str,
}

impl<'a> Code<'a> {
    fn new(all: &[Token], src: &'a str) -> Self {
        Code { toks: all.iter().filter(|t| !is_comment(t)).copied().collect(), src }
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        let t = self.toks.get(i)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.ident(i) == Some(s)
    }

    fn punct(&self, i: usize) -> Option<char> {
        let t = self.toks.get(i)?;
        (t.kind == TokenKind::Punct).then(|| t.text(self.src).chars().next())?
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.punct(i) == Some(c)
    }
}

/// A brace-delimited region opened by `#[cfg(test)]` / `#[test]` /
/// `#[ignore]` attributes (byte span of attribute start .. closing brace).
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
    test: bool,
    ignore: bool,
}

/// Parses one attribute group; `open` indexes its `[`. Returns
/// (is-test, is-ignore, index just past the closing `]`).
fn attr_flags(code: &Code<'_>, open: usize) -> (bool, bool, usize) {
    let mut depth = 0usize;
    let mut j = open;
    let mut test = false;
    let mut negated = false;
    let mut ignore = false;
    while j < code.toks.len() {
        match code.punct(j) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return (test && !negated, ignore, j + 1);
                }
            }
            _ => match code.ident(j) {
                Some("test") => test = true,
                Some("not") => negated = true,
                Some("ignore") => ignore = true,
                _ => {}
            },
        }
        j += 1;
    }
    (test && !negated, ignore, j)
}

/// Byte offset just past the brace matching `open` (which indexes a `{`).
fn match_brace_end(code: &Code<'_>, open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.toks.len() {
        match code.punct(j) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return code.toks[j].end;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.src.len()
}

/// Finds every `#[cfg(test)]`/`#[test]`/`#[ignore]`-attributed item body.
/// Regions nest (a `#[test]` fn inside a `#[cfg(test)]` mod yields both);
/// queries ask whether *any* enclosing region carries a flag.
fn build_regions(code: &Code<'_>) -> Vec<Region> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.toks.len() {
        if !(code.is_punct(i, '#') && code.is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let attr_start = code.toks[i].start;
        let mut test = false;
        let mut ignore = false;
        let mut j = i;
        while code.is_punct(j, '#') && code.is_punct(j + 1, '[') {
            let (t, g, next) = attr_flags(code, j + 1);
            test |= t;
            ignore |= g;
            j = next;
        }
        if !(test || ignore) {
            i = j;
            continue;
        }
        // Scan the attributed item's header for its body brace; `;` first
        // means a body-less item (e.g. `#[cfg(test)] use ...;`).
        let mut depth = 0i64;
        let mut k = j;
        let mut body = None;
        while k < code.toks.len() {
            match code.punct(k) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    body = Some(k);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        match body {
            Some(b) => {
                let end = match_brace_end(code, b);
                regions.push(Region { start: attr_start, end, test, ignore });
                i = b + 1; // descend, so nested #[test]/#[ignore] are found
            }
            None => i = k + 1,
        }
    }
    regions
}

fn in_region(regions: &[Region], pos: usize, want: impl Fn(&Region) -> bool) -> bool {
    regions.iter().any(|r| want(r) && r.start <= pos && pos < r.end)
}

type Allows = BTreeMap<usize, BTreeSet<&'static str>>;

/// Extracts `allow` waiver pragmas (see the module docs for the syntax);
/// malformed ones become `pragma` findings. Returns line → waived rules.
fn build_pragmas(all: &[Token], src: &str, path: &str, findings: &mut Vec<Finding>) -> Allows {
    let mut allows: Allows = BTreeMap::new();
    for (idx, t) in all.iter().enumerate() {
        if !is_comment(t) {
            continue;
        }
        let text = t.text(src);
        let Some(pos) = text.find("lint:allow") else { continue };
        let mut bad = |msg: String| {
            findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "pragma",
                message: msg,
            });
        };
        let rest = &text[pos + "lint:allow".len()..];
        let Some(rest) = rest.strip_prefix('(') else {
            bad("malformed pragma: expected `lint:allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed pragma: unclosed `(` in `lint:allow(<rule>)`".to_string());
            continue;
        };
        let rule_name = rest[..close].trim();
        let Some(rule) = rule_named(rule_name).filter(|r| r.name != "pragma") else {
            bad(format!(
                "unknown rule `{rule_name}` in pragma; known rules: {}",
                RULES
                    .iter()
                    .filter(|r| r.name != "pragma")
                    .map(|r| r.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            bad(format!(
                "pragma for `{}` is missing its `: <reason>` — waivers must say why",
                rule.name
            ));
            continue;
        };
        let reason = reason.trim().trim_end_matches("*/").trim();
        if reason.is_empty() {
            bad(format!("pragma for `{}` has an empty reason — waivers must say why", rule.name));
            continue;
        }
        // A trailing pragma covers its own line; a standalone one covers the
        // next line of code (its own line too, harmlessly).
        allows.entry(t.line).or_default().insert(rule.name);
        let trailing =
            all[..idx].iter().rev().take_while(|p| p.line == t.line).any(|p| !is_comment(p));
        if !trailing {
            if let Some(nxt) = all[idx + 1..].iter().find(|p| !is_comment(p)) {
                allows.entry(nxt.line).or_default().insert(rule.name);
            }
        }
    }
    allows
}

fn waived(allows: &Allows, line: usize, rule: &str) -> bool {
    allows.get(&line).is_some_and(|set| set.contains(rule))
}

/// Everything the per-file rules need about one file.
struct Ctx<'a> {
    path: &'a str,
    krate: &'a str,
    kind: DirKind,
    code: &'a Code<'a>,
    regions: &'a [Region],
    allows: &'a Allows,
}

impl Ctx<'_> {
    fn in_test(&self, pos: usize) -> bool {
        in_region(self.regions, pos, |r| r.test)
    }

    fn in_ignore(&self, pos: usize) -> bool {
        in_region(self.regions, pos, |r| r.ignore)
    }

    fn emit(&self, findings: &mut Vec<Finding>, line: usize, rule: &'static str, message: String) {
        if !waived(self.allows, line, rule) {
            findings.push(Finding { file: self.path.to_string(), line, rule, message });
        }
    }
}

/// R1: iteration over hash-ordered collections in deterministic crates.
fn rule_hash_iter(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    if ctx.kind != DirKind::Src || !DETERMINISTIC_CRATES.contains(&ctx.krate) {
        return;
    }
    let code = ctx.code;
    let n = code.toks.len();

    // Pass 1: names bound to HashMap/HashSet — struct fields and let/assign
    // bindings (`x: HashMap<..>`, `x = HashMap::new()`) — plus the body
    // spans of `impl Trait for HashMap<..>` blocks, where `self` itself is
    // hash-ordered.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    let mut self_spans: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        let Some(t) = code.ident(i) else { continue };
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        if ctx.in_test(code.toks[i].start) {
            continue;
        }
        if i >= 1 && code.is_ident(i - 1, "for") {
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < n {
                match code.punct(j) {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => {
                        self_spans.push((code.toks[j].start, match_brace_end(code, j)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            continue;
        }
        // Rewind over a path prefix (`std::collections::HashMap`) and then
        // over reference sigils (`&`, `&mut`, `&'a`).
        let mut p = i;
        while p >= 3
            && code.is_punct(p - 1, ':')
            && code.is_punct(p - 2, ':')
            && code.ident(p - 3).is_some()
        {
            p -= 3;
        }
        while p >= 1
            && (code.is_punct(p - 1, '&')
                || code.is_ident(p - 1, "mut")
                || code.toks[p - 1].kind == TokenKind::Lifetime)
        {
            p -= 1;
        }
        if p >= 2 && code.is_punct(p - 1, ':') && !code.is_punct(p - 2, ':') {
            if let Some(name) = code.ident(p - 2) {
                names.insert(name);
            }
        } else if p >= 2 && code.is_punct(p - 1, '=') {
            if let Some(name) = code.ident(p - 2) {
                if name != "let" {
                    names.insert(name);
                }
            }
        }
    }
    if names.is_empty() && self_spans.is_empty() {
        return;
    }

    // Pass 2: iteration sites over those names.
    for i in 0..n {
        if ctx.in_test(code.toks[i].start) {
            continue;
        }
        let Some(t) = code.ident(i) else { continue };
        // name.iter() / self.map.keys() / ...
        if HASH_ITER_METHODS.contains(&t)
            && i >= 2
            && code.is_punct(i - 1, '.')
            && code.is_punct(i + 1, '(')
        {
            if let Some(recv) = code.ident(i - 2) {
                let pos = code.toks[i].start;
                let hashy = names.contains(recv)
                    || (recv == "self" && self_spans.iter().any(|&(s, e)| s <= pos && pos < e));
                if hashy {
                    ctx.emit(
                        findings,
                        code.toks[i].line,
                        "hash-iter",
                        format!(
                            "`{recv}.{t}()` iterates a hash-ordered collection in a \
                             deterministic crate; use BTreeMap/a dense index or sort the result"
                        ),
                    );
                }
            }
        }
        // for pat in [&][mut] name { ... }
        if t == "for" {
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < n {
                match code.punct(j) {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => break,
                    _ => {}
                }
                if depth == 0 && code.is_ident(j, "in") {
                    let mut k = j + 1;
                    while code.is_punct(k, '&') || code.is_ident(k, "mut") {
                        k += 1;
                    }
                    if let Some(name) = code.ident(k) {
                        if names.contains(name) && code.is_punct(k + 1, '{') {
                            ctx.emit(
                                findings,
                                code.toks[i].line,
                                "hash-iter",
                                format!(
                                    "for-loop over hash-ordered `{name}` in a deterministic \
                                     crate; use BTreeMap/a dense index or sort first"
                                ),
                            );
                        }
                    }
                    break;
                }
                j += 1;
            }
        }
    }
}

/// Whether a file sits on the daemon request path (R2 scope).
fn on_daemon_path(path: &str) -> bool {
    path.starts_with("crates/server/src/")
        || path == "crates/placer-core/src/service.rs"
        || path == "crates/placer-core/src/scheduler.rs"
}

/// R2: panic sources on the daemon request path.
fn rule_daemon_panic(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    if !on_daemon_path(ctx.path) {
        return;
    }
    let code = ctx.code;
    for i in 0..code.toks.len() {
        if ctx.in_test(code.toks[i].start) {
            continue;
        }
        let line = code.toks[i].line;
        if let Some(t) = code.ident(i) {
            match t {
                "unwrap" | "expect"
                    if i >= 1 && code.is_punct(i - 1, '.') && code.is_punct(i + 1, '(') =>
                {
                    ctx.emit(
                        findings,
                        line,
                        "daemon-panic",
                        format!(
                            "`.{t}()` on the daemon request path can kill the session; \
                             return a typed PlaceError or an `err` frame instead"
                        ),
                    );
                }
                "panic" | "unreachable" | "todo" | "unimplemented" if code.is_punct(i + 1, '!') => {
                    ctx.emit(
                        findings,
                        line,
                        "daemon-panic",
                        format!(
                            "`{t}!` on the daemon request path can kill the session; \
                             map the condition to a structured error"
                        ),
                    );
                }
                _ => {}
            }
        } else if code.is_punct(i, '[') && i >= 1 {
            let prev = &code.toks[i - 1];
            let indexes = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(code.src)),
                TokenKind::Punct => matches!(prev.text(code.src), ")" | "]"),
                _ => false,
            };
            if indexes {
                ctx.emit(
                    findings,
                    line,
                    "daemon-panic",
                    "slice/array index on the daemon request path can panic on bad input; \
                     use .get() and map None to a structured error"
                        .to_string(),
                );
            }
        }
    }
}

/// R3: ambient wall-clock reads outside the timing crate.
fn rule_wall_clock(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    if ctx.kind != DirKind::Src || ctx.krate == "bench" {
        return;
    }
    let code = ctx.code;
    for i in 0..code.toks.len() {
        let Some(t) = code.ident(i) else { continue };
        if (t == "Instant" || t == "SystemTime")
            && code.is_punct(i + 1, ':')
            && code.is_punct(i + 2, ':')
            && code.is_ident(i + 3, "now")
            && !ctx.in_test(code.toks[i].start)
        {
            ctx.emit(
                findings,
                code.toks[i].line,
                "wall-clock",
                format!(
                    "`{t}::now()` outside the sanctioned timing crate is a determinism \
                     hazard; move timing into bench or pragma a report-only read"
                ),
            );
        }
    }
}

/// R6: filesystem writes in deterministic crates outside the spill tier.
fn rule_fs_scope(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    if ctx.kind != DirKind::Src
        || !DETERMINISTIC_CRATES.contains(&ctx.krate)
        || ctx.path == SPILL_MODULE
    {
        return;
    }
    let code = ctx.code;
    for i in 0..code.toks.len() {
        if ctx.in_test(code.toks[i].start) {
            continue;
        }
        let Some(t) = code.ident(i) else { continue };
        let line = code.toks[i].line;
        let pathy = code.is_punct(i + 1, ':') && code.is_punct(i + 2, ':');
        if t == "fs" && pathy {
            if let Some(f) = code.ident(i + 3) {
                if FS_WRITE_FNS.contains(&f) && code.is_punct(i + 4, '(') {
                    ctx.emit(
                        findings,
                        line,
                        "fs-scope",
                        format!(
                            "`fs::{f}()` writes the filesystem from a deterministic crate; \
                             route persistence through eval::SpillTier (docs/MEMORY.md)"
                        ),
                    );
                }
            }
        } else if t == "File"
            && pathy
            && matches!(code.ident(i + 3), Some("create") | Some("create_new") | Some("options"))
        {
            ctx.emit(
                findings,
                line,
                "fs-scope",
                format!(
                    "`File::{}` opens the filesystem for writing from a deterministic \
                     crate; route persistence through eval::SpillTier (docs/MEMORY.md)",
                    code.ident(i + 3).unwrap_or("create")
                ),
            );
        } else if t == "OpenOptions" {
            ctx.emit(
                findings,
                line,
                "fs-scope",
                "`OpenOptions` grants write access to the filesystem from a deterministic \
                 crate; route persistence through eval::SpillTier (docs/MEMORY.md)"
                    .to_string(),
            );
        }
    }
}

/// R5: machine-dependent reads in non-#[ignore] test code.
fn rule_test_env(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let code = ctx.code;
    for i in 0..code.toks.len() {
        let pos = code.toks[i].start;
        if !(ctx.kind == DirKind::Tests || ctx.in_test(pos)) || ctx.in_ignore(pos) {
            continue;
        }
        let Some(t) = code.ident(i) else { continue };
        let line = code.toks[i].line;
        if t == "sleep" && code.is_punct(i + 1, '(') {
            ctx.emit(
                findings,
                line,
                "test-env",
                "test sleeps wall-clock time (flaky under load); synchronize explicitly, \
                 mark #[ignore], or pragma with justification"
                    .to_string(),
            );
        } else if t == "env"
            && code.is_punct(i + 1, ':')
            && code.is_punct(i + 2, ':')
            && matches!(code.ident(i + 3), Some("var") | Some("var_os") | Some("vars"))
        {
            ctx.emit(
                findings,
                line,
                "test-env",
                "test reads the process environment; inject configuration instead, \
                 mark #[ignore], or pragma with justification"
                    .to_string(),
            );
        } else if t == "available_parallelism" || t == "num_cpus" {
            ctx.emit(
                findings,
                line,
                "test-env",
                "test depends on the machine's thread count; pin the count, \
                 mark #[ignore], or pragma with justification"
                    .to_string(),
            );
        }
    }
}

/// A heap-owning `pub struct` candidate awaiting its `impl HeapSize` (R4).
struct HeapStruct {
    krate: String,
    name: String,
    file: String,
    line: usize,
    heap_field: String,
    waived: bool,
}

/// R4 collection pass: public structs with heap-owning fields, and every
/// `impl HeapSize for T`, per accounted crate. Resolution is cross-file.
fn collect_heap_size(
    ctx: &Ctx<'_>,
    structs: &mut Vec<HeapStruct>,
    impls: &mut BTreeSet<(String, String)>,
) {
    if ctx.kind != DirKind::Src || !ACCOUNTED_CRATES.contains(&ctx.krate) {
        return;
    }
    let code = ctx.code;
    let n = code.toks.len();
    for i in 0..n {
        let Some(t) = code.ident(i) else { continue };
        if t == "HeapSize" && code.is_ident(i + 1, "for") {
            if let Some(name) = code.ident(i + 2) {
                impls.insert((ctx.krate.to_string(), name.to_string()));
            }
            continue;
        }
        if t != "struct" || ctx.in_test(code.toks[i].start) {
            continue;
        }
        let Some(name) = code.ident(i + 1) else { continue };
        // Visibility: `pub struct` or `pub(crate) struct`.
        let is_pub = if i >= 1 && code.is_ident(i - 1, "pub") {
            true
        } else if i >= 1 && code.is_punct(i - 1, ')') {
            let mut p = i - 1;
            while p > 0 && !code.is_punct(p, '(') {
                p -= 1;
            }
            p >= 1 && code.is_ident(p - 1, "pub")
        } else {
            false
        };
        if !is_pub {
            continue;
        }
        // Skip generics to the body (`{`, tuple `(`, or unit `;`).
        let mut j = i + 2;
        if code.is_punct(j, '<') {
            let mut depth = 0i64;
            while j < n {
                match code.punct(j) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let (open, close_ch) = loop {
            match code.punct(j) {
                Some('{') => break (j, '}'),
                Some('(') => break (j, ')'),
                Some(';') => break (usize::MAX, ' '),
                None if j >= n => break (usize::MAX, ' '),
                _ => j += 1,
            }
        };
        if open == usize::MAX {
            continue;
        }
        let open_ch = if close_ch == '}' { '{' } else { '(' };
        let mut depth = 0i64;
        let mut k = open;
        let mut heap_field: Option<&str> = None;
        while k < n {
            match code.punct(k) {
                Some(c) if c == open_ch => depth += 1,
                Some(c) if c == close_ch => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if let Some(f) = code.ident(k) {
                        if HEAP_OWNING_TYPES.contains(&f) && heap_field.is_none() {
                            heap_field = Some(f);
                        }
                    }
                }
            }
            k += 1;
        }
        if let Some(f) = heap_field {
            let line = code.toks[i + 1].line;
            structs.push(HeapStruct {
                krate: ctx.krate.to_string(),
                name: name.to_string(),
                file: ctx.path.to_string(),
                line,
                heap_field: f.to_string(),
                waived: waived(ctx.allows, line, "heap-size"),
            });
        }
    }
}

/// Runs every rule over `files` and returns sorted, deduplicated findings.
pub fn analyze(files: &[FileInput]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut heap_structs: Vec<HeapStruct> = Vec::new();
    let mut heap_impls: BTreeSet<(String, String)> = BTreeSet::new();
    for f in files {
        let all = tokenize(&f.text);
        let code = Code::new(&all, &f.text);
        let mut allows_findings = Vec::new();
        let allows = build_pragmas(&all, &f.text, &f.path, &mut allows_findings);
        findings.append(&mut allows_findings);
        let regions = build_regions(&code);
        let ctx = Ctx {
            path: &f.path,
            krate: crate_of(&f.path),
            kind: dir_kind(&f.path),
            code: &code,
            regions: &regions,
            allows: &allows,
        };
        rule_hash_iter(&ctx, &mut findings);
        rule_daemon_panic(&ctx, &mut findings);
        rule_wall_clock(&ctx, &mut findings);
        rule_fs_scope(&ctx, &mut findings);
        rule_test_env(&ctx, &mut findings);
        collect_heap_size(&ctx, &mut heap_structs, &mut heap_impls);
    }
    for s in heap_structs {
        if !s.waived && !heap_impls.contains(&(s.krate.clone(), s.name.clone())) {
            findings.push(Finding {
                file: s.file,
                line: s.line,
                rule: "heap-size",
                message: format!(
                    "pub struct `{}` owns heap memory (field uses {}) but crate `{}` has no \
                     `impl HeapSize for {}`; the byte budget will undercount it",
                    s.name, s.heap_field, s.krate, s.name
                ),
            });
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Collects every workspace `.rs` source under `root`: the umbrella crate's
/// `src`/`tests`/`examples` plus each `crates/*` member's `src`/`tests`/
/// `examples`/`benches`. Shims (`shims/*`) are vendored stand-ins for
/// external crates and are deliberately out of scope. Paths come back
/// root-relative, sorted, `/`-separated.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<FileInput>> {
    const SUBDIRS: &[&str] = &["src", "tests", "examples", "benches"];
    let mut dirs: Vec<PathBuf> = SUBDIRS.iter().map(|s| root.join(s)).collect();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        members.sort();
        for m in members.into_iter().filter(|m| m.is_dir()) {
            dirs.extend(SUBDIRS.iter().map(|s| m.join(s)));
        }
    }
    let mut paths = Vec::new();
    for d in dirs.into_iter().filter(|d| d.is_dir()) {
        walk_rs(&d, &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p.strip_prefix(root).unwrap_or(&p);
        files.push(FileInput {
            path: rel.to_string_lossy().replace('\\', "/"),
            text: fs::read_to_string(&p)?,
        });
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<Finding> {
        analyze(&[FileInput { path: path.to_string(), text: text.to_string() }])
    }

    #[test]
    fn crate_and_kind_classification() {
        assert_eq!(crate_of("crates/hidap/src/lib.rs"), "hidap");
        assert_eq!(crate_of("src/lib.rs"), "hidap-repro");
        assert_eq!(dir_kind("crates/hidap/tests/x.rs"), DirKind::Tests);
        assert_eq!(dir_kind("crates/hidap/src/tests/x.rs"), DirKind::Src);
        assert_eq!(dir_kind("tests/e2e.rs"), DirKind::Tests);
        assert_eq!(dir_kind("crates/bench/examples/a.rs"), DirKind::Examples);
    }

    #[test]
    fn test_region_exempts_hash_iteration() {
        let src = r#"
            use std::collections::HashMap;
            pub struct S { m: HashMap<u32, u32> }
            #[cfg(test)]
            mod tests {
                fn f(m: std::collections::HashMap<u32, u32>) -> usize {
                    m.iter().count()
                }
            }
        "#;
        assert!(one("crates/hidap/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = r#"
            #[cfg(not(test))]
            mod prod {
                pub fn f(m: &std::collections::HashMap<u32, u32>) -> usize {
                    m.iter().count()
                }
            }
        "#;
        let f = one("crates/hidap/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hash-iter");
    }

    #[test]
    fn standalone_pragma_covers_next_code_line() {
        let src = r#"
            pub fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
                // lint:allow(hash-iter): result is sorted before returning
                let mut v: Vec<u32> = m.keys().copied().collect();
                v.sort_unstable();
                v
            }
        "#;
        assert!(one("crates/eval/src/a.rs", src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "// lint:allow(hash-iter):\nfn main() {}\n";
        let f = one("crates/hidap/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "pragma");
    }

    #[test]
    fn pragma_with_unknown_rule_is_a_finding() {
        let src = "// lint:allow(no-such-rule): because\nfn main() {}\n";
        let f = one("crates/hidap/src/a.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "pragma");
        assert!(f[0].message.contains("no-such-rule"));
    }

    #[test]
    fn fs_writes_in_deterministic_crates_are_flagged() {
        let src = r#"
            pub fn persist(dir: &std::path::Path, bytes: &[u8]) {
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(dir.join("x"), bytes);
            }
        "#;
        let f = one("crates/placer-core/src/a.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "fs-scope"));
        assert!(f[0].message.contains("create_dir_all"), "{f:?}");
        // reads never fire — only writes scatter observable state
        assert!(one("crates/placer-core/src/a.rs", "fn f() { let _ = std::fs::read(\"x\"); }")
            .is_empty());
    }

    #[test]
    fn file_create_and_open_options_are_flagged() {
        let f = one(
            "crates/graphs/src/a.rs",
            "fn f() { let _ = std::fs::File::create(\"x\"); }\n\
             fn g() { let _ = std::fs::OpenOptions::new(); }\n",
        );
        assert_eq!(f.iter().filter(|f| f.rule == "fs-scope").count(), 2, "{f:?}");
        assert!(f[0].message.contains("File::create"), "{f:?}");
        assert!(f[1].message.contains("OpenOptions"), "{f:?}");
    }

    #[test]
    fn the_spill_module_tests_and_other_crates_are_exempt() {
        let write = "pub fn f() { let _ = std::fs::write(\"x\", b\"y\"); }\n";
        assert!(one("crates/eval/src/spill.rs", write).is_empty(), "the sanctioned module");
        assert!(one("crates/eval/tests/a.rs", write).is_empty(), "integration tests");
        assert!(one("crates/cli/src/a.rs", write).is_empty(), "non-deterministic crate");
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{write}}}\n");
        assert!(one("crates/eval/src/a.rs", &in_test).is_empty(), "unit-test region");
    }

    #[test]
    fn fs_scope_is_waivable_with_a_reason() {
        let src = "\
            pub fn f() {\n\
                // lint:allow(fs-scope): crash-report path, never read back\n\
                let _ = std::fs::write(\"x\", b\"y\");\n\
            }\n";
        assert!(one("crates/netlist/src/a.rs", src).is_empty());
    }

    #[test]
    fn findings_render_as_file_line_rule_message() {
        let src = "pub fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let f = one("crates/eval/src/a.rs", src);
        assert_eq!(f.len(), 1);
        let line = f[0].to_string();
        assert!(line.starts_with("crates/eval/src/a.rs:1: wall-clock: "), "{line}");
    }
}
