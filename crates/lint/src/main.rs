//! `hidap-lint` CLI: scans the workspace and prints findings.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/io error.

#![forbid(unsafe_code)]

use lint::{analyze, rule_named, scan_workspace, RULES};
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes a block of text to stdout. A closed pipe (`hidap-lint | head`) is
/// the consumer's normal way to stop reading, not a reason to panic, so the
/// caller maps the result through [`finish`].
fn print_out(text: &str) -> io::Result<()> {
    let mut out = io::stdout().lock();
    out.write_all(text.as_bytes())?;
    if !text.ends_with('\n') {
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Resolves a stdout write into the exit code: broken pipe keeps the
/// intended code, any other io error becomes a usage/io failure.
fn finish(result: io::Result<()>, code: ExitCode) -> ExitCode {
    match result {
        Ok(()) => code,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => code,
        Err(e) => {
            eprintln!("hidap-lint: cannot write to stdout: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
hidap-lint: workspace invariant checker for the hidap placer

USAGE:
    cargo run -p lint --release [-- OPTIONS]

OPTIONS:
    --root <dir>      workspace root to scan (default: .)
    --explain <rule>  print a rule's full rationale and exit
    --list            list the rule names and one-line summaries
    -h, --help        this help

RULES:
    hash-iter     no HashMap/HashSet iteration in deterministic crates
    daemon-panic  no unwrap/expect/panic!/slice-index on the daemon path
    wall-clock    no Instant::now/SystemTime::now outside timing code
    heap-size     heap-owning pub structs must impl HeapSize
    test-env      no sleep/env/thread-count reads in non-#[ignore] tests
    pragma        lint:allow waivers must name a rule and carry a reason

Findings print as `file:line: rule: message`; waive a site with
`// lint:allow(<rule>): <reason>`. Full rationale: docs/LINTS.md.
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut explain: Option<String> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("hidap-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(v) => explain = Some(v),
                None => {
                    eprintln!("hidap-lint: --explain requires a rule name");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "-h" | "--help" => {
                return finish(print_out(USAGE), ExitCode::SUCCESS);
            }
            other => {
                eprintln!("hidap-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        let table: String =
            RULES.iter().map(|r| format!("{:<13} {}\n", r.name, r.summary)).collect();
        return finish(print_out(&table), ExitCode::SUCCESS);
    }

    if let Some(name) = explain {
        return match rule_named(&name) {
            Some(rule) => finish(print_out(rule.explain), ExitCode::SUCCESS),
            None => {
                eprintln!(
                    "hidap-lint: no rule named `{name}`; known rules: {}",
                    RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let files = match scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("hidap-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = analyze(&files);
    if findings.is_empty() {
        eprintln!("hidap-lint: {} files clean", files.len());
        return ExitCode::SUCCESS;
    }
    let report: String = findings.iter().map(|f| format!("{f}\n")).collect();
    eprintln!("hidap-lint: {} finding(s) in {} files", findings.len(), files.len());
    finish(print_out(&report), ExitCode::FAILURE)
}
