//! Property tests of the lexer's totality: any input lexes without panicking,
//! and the token spans tile the source exactly.

use lint::lexer::{tokenize, TokenKind};
use proptest::prelude::*;

/// Fragments biased toward the constructs the lexer special-cases: raw
/// strings, nested comments, lifetimes vs chars, ranges vs floats — plus
/// unterminated openers, which must still lex to EOF.
fn fragment() -> impl Strategy<Value = String> {
    prop::sample::select(
        [
            "fn main() {}",
            "let r = 0..10;",
            "let f = 1.5e3;",
            "r#\"raw \" quote\"#",
            "br##\"fenced\"##",
            "c\"c string\"",
            "'a",
            "'x'",
            "b'\\n'",
            "\"esc \\\" aped\"",
            "/* outer /* inner */ still */",
            "// line comment",
            "r#match",
            "ident_0",
            "::<>",
            "'\\u{1F600}'",
            "\"unterminated",
            "/* unterminated",
            "r#\"unterminated raw",
            "'",
            "#",
            "\\",
            "\u{0}",
            "日本語",
            " \t\n",
        ]
        .map(str::to_string)
        .to_vec(),
    )
}

fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(fragment(), 0..24).prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn lexing_never_panics_and_spans_tile_the_source(src in soup()) {
        let toks = tokenize(&src);
        // spans tile [0, len): in order, non-empty, and anything between two
        // tokens (or after the last) is whitespace the lexer skipped
        let mut pos = 0;
        let mut line = 1;
        for t in &toks {
            prop_assert!(t.start >= pos, "overlap before {:?} in {:?}", t, src);
            prop_assert!(
                src[pos..t.start].chars().all(char::is_whitespace),
                "non-whitespace bytes dropped before {:?} in {:?}", t, src
            );
            prop_assert!(t.end > t.start, "empty token {:?}", t);
            prop_assert!(t.line >= line, "line numbers are monotone");
            line = t.line;
            pos = t.end;
        }
        prop_assert!(
            src[pos..].chars().all(char::is_whitespace),
            "trailing non-whitespace unlexed in {:?}", src
        );
        // every span is a valid char boundary pair (text() cannot panic)
        for t in &toks {
            let _ = t.text(&src);
        }
    }

    #[test]
    fn comments_and_strings_round_trip_their_text(word in "[a-z][a-z0-9_]{0,10}") {
        let src = format!("// note {word}\nlet s = \"{word}\"; /* {word} */");
        let toks = tokenize(&src);
        let texts: Vec<&str> = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert!(texts.contains(&format!("// note {word}").as_str()));
        prop_assert!(texts.contains(&format!("\"{word}\"").as_str()));
        prop_assert!(texts.contains(&format!("/* {word} */").as_str()));
        prop_assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }
}
