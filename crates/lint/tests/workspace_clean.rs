//! The gating check, as a test: the workspace this lint ships in must itself
//! be clean. CI runs the binary too (`cargo run -p lint --release`); this
//! keeps plain `cargo test` equally honest.

use lint::{analyze, scan_workspace};
use std::path::Path;

#[test]
fn the_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = scan_workspace(&root).expect("workspace sources are readable");
    assert!(files.len() > 100, "the scan must cover the whole workspace, got {}", files.len());
    let findings = analyze(&files);
    assert!(
        findings.is_empty(),
        "fix or pragma these before shipping:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
