//! Fixture tests: every rule proves one detection, one clean pass, and one
//! honored pragma on a purpose-built source file.

use lint::{analyze, rule_named, FileInput, Finding, RULES};

fn check(path: &str, text: &str) -> Vec<Finding> {
    analyze(&[FileInput { path: path.to_string(), text: text.to_string() }])
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_iteration_in_a_deterministic_crate() {
    let findings = check(
        "crates/hidap/src/pass.rs",
        r#"
use std::collections::HashMap;
pub fn order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (&k, _) in m.iter() {
        out.push(k);
    }
    out
}
"#,
    );
    assert_eq!(rules_of(&findings), ["hash-iter"], "{findings:?}");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn hash_iter_allows_lookups_and_btree_iteration() {
    let findings = check(
        "crates/hidap/src/pass.rs",
        r#"
use std::collections::{BTreeMap, HashMap};
pub fn ok(m: &HashMap<u32, u32>, b: &BTreeMap<u32, u32>) -> u32 {
    let hit = m.get(&1).copied().unwrap_or(0);
    hit + b.values().sum::<u32>()
}
"#,
    );
    assert_eq!(findings, [], "lookups are fine, and BTreeMap order is stable");
}

#[test]
fn hash_iter_ignores_test_code_and_other_crates() {
    let body = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let m: super::HashMap<u32, u32> = super::HashMap::new();
        for _ in m.iter() {}
    }
}
"#;
    assert_eq!(check("crates/hidap/src/pass.rs", body), [], "test modules are exempt");
    let in_cli = r#"
use std::collections::HashMap;
pub fn report(m: &HashMap<u32, u32>) {
    for _ in m.iter() {}
}
"#;
    assert_eq!(check("crates/cli/src/lib.rs", in_cli), [], "cli is not a deterministic crate");
}

#[test]
fn hash_iter_pragma_waives_with_a_reason() {
    let findings = check(
        "crates/hidap/src/pass.rs",
        r#"
use std::collections::HashMap;
pub fn total(m: &HashMap<u32, u32>) -> u32 {
    // lint:allow(hash-iter): summing is order-independent
    m.values().sum()
}
"#,
    );
    assert_eq!(findings, [], "a reasoned pragma waives the next code line");
}

// ------------------------------------------------------------- daemon-panic

#[test]
fn daemon_panic_flags_unwrap_indexing_and_panics_on_daemon_paths() {
    let findings = check(
        "crates/server/src/session.rs",
        r#"
pub fn step(jobs: &[u32], which: Option<usize>) -> u32 {
    let i = which.unwrap();
    if i > jobs.len() {
        panic!("out of range");
    }
    jobs[i]
}
"#,
    );
    assert_eq!(rules_of(&findings), ["daemon-panic", "daemon-panic", "daemon-panic"]);
    assert_eq!(findings.iter().map(|f| f.line).collect::<Vec<_>>(), [3, 5, 7], "{findings:?}");
}

#[test]
fn daemon_panic_leaves_non_daemon_files_and_tests_alone() {
    let body = r#"
pub fn step(jobs: &[u32]) -> u32 {
    jobs[0]
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::step(&[1]), [1][0]);
        None::<u32>.unwrap();
    }
}
"#;
    // same content: flagged on the daemon path, clean in an ordinary crate
    assert_eq!(rules_of(&check("crates/server/src/foo.rs", body)), ["daemon-panic"]);
    assert_eq!(check("crates/hidap/src/foo.rs", body), []);
}

#[test]
fn daemon_panic_pragma_waives_a_proven_infallible_site() {
    let findings = check(
        "crates/placer-core/src/scheduler.rs",
        r#"
pub fn first(jobs: &[u32]) -> u32 {
    // lint:allow(daemon-panic): jobs is never empty, checked by the caller
    jobs[0]
}
"#,
    );
    assert_eq!(findings, []);
}

// --------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_flags_instant_and_system_time_outside_bench() {
    let findings = check(
        "crates/eval/src/timing.rs",
        r#"
use std::time::{Instant, SystemTime};
pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
"#,
    );
    assert_eq!(rules_of(&findings), ["wall-clock", "wall-clock"]);
}

#[test]
fn wall_clock_is_silent_in_bench_and_in_tests() {
    let body = r#"
use std::time::Instant;
pub fn stamp() -> Instant {
    Instant::now()
}
"#;
    assert_eq!(check("crates/bench/src/run.rs", body), [], "bench owns timing");
    let in_test = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::time::Instant::now();
    }
}
"#;
    assert_eq!(check("crates/eval/src/timing.rs", in_test), []);
}

#[test]
fn wall_clock_pragma_waives_a_report_only_read() {
    let findings = check(
        "crates/eval/src/timing.rs",
        r#"
pub fn wall() -> std::time::Instant {
    // lint:allow(wall-clock): report-only timing, never influences results
    std::time::Instant::now()
}
"#,
    );
    assert_eq!(findings, []);
}

// ---------------------------------------------------------------- heap-size

#[test]
fn heap_size_flags_an_unaccounted_pub_struct() {
    let findings = check(
        "crates/netlist/src/types.rs",
        r#"
pub struct Catalog {
    pub names: Vec<String>,
}
"#,
    );
    assert_eq!(rules_of(&findings), ["heap-size"], "{findings:?}");
    assert!(findings[0].message.contains("Catalog"));
}

#[test]
fn heap_size_accepts_an_impl_anywhere_in_the_file_set() {
    let types = FileInput {
        path: "crates/netlist/src/types.rs".to_string(),
        text: "pub struct Catalog {\n    pub names: Vec<String>,\n}\n".to_string(),
    };
    let impls = FileInput {
        path: "crates/netlist/src/heap.rs".to_string(),
        text: "impl HeapSize for Catalog {\n    fn heap_bytes(&self) -> usize { 0 }\n}\n"
            .to_string(),
    };
    assert_eq!(analyze(&[types, impls]), [], "the impl may live in another file");
}

#[test]
fn heap_size_skips_pod_structs_private_structs_and_other_crates() {
    assert_eq!(
        check(
            "crates/netlist/src/types.rs",
            "pub struct Size {\n    pub w: i64,\n    pub h: i64,\n}\n"
        ),
        [],
        "no heap-owning fields"
    );
    assert_eq!(
        check("crates/netlist/src/types.rs", "struct Scratch {\n    names: Vec<String>,\n}\n"),
        [],
        "private structs are not part of the accounting surface"
    );
    assert_eq!(
        check("crates/eval/src/types.rs", "pub struct Catalog {\n    pub names: Vec<String>,\n}\n"),
        [],
        "only the store-facing crates are in scope"
    );
}

#[test]
fn heap_size_pragma_waives_a_transient() {
    let findings = check(
        "crates/netlist/src/types.rs",
        r#"
// lint:allow(heap-size): parse-time transient, dropped before interning
pub struct Scratch {
    pub names: Vec<String>,
}
"#,
    );
    assert_eq!(findings, []);
}

// ----------------------------------------------------------------- test-env

#[test]
fn test_env_flags_sleep_env_and_parallelism_in_tests() {
    let findings = check(
        "crates/hidap/tests/flaky.rs",
        r#"
#[test]
fn t() {
    std::thread::sleep(std::time::Duration::from_millis(50));
    let _ = std::env::var("THREADS");
    let _ = std::thread::available_parallelism();
}
"#,
    );
    assert_eq!(rules_of(&findings), ["test-env", "test-env", "test-env"]);
}

#[test]
fn test_env_exempts_ignored_tests() {
    let findings = check(
        "crates/hidap/tests/slow.rs",
        r#"
#[test]
#[ignore = "wall-clock sensitive; run explicitly"]
fn t() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}
"#,
    );
    assert_eq!(findings, [], "#[ignore] opts a test out of the hermetic contract");
}

#[test]
fn test_env_pragma_waives_a_bounded_poll() {
    let findings = check(
        "crates/hidap/tests/poll.rs",
        r#"
#[test]
fn t() {
    // lint:allow(test-env): bounded poll; load can only delay, not change, the outcome
    std::thread::sleep(std::time::Duration::from_millis(5));
}
"#,
    );
    assert_eq!(findings, []);
}

// ----------------------------------------------------------------- fs-scope

#[test]
fn fs_scope_flags_writes_in_a_deterministic_crate() {
    let findings = check(
        "crates/placer-core/src/store.rs",
        r#"
pub fn persist(dir: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::create_dir_all(dir);
    let _ = std::fs::write(dir.join("cache.bin"), bytes);
}
"#,
    );
    assert_eq!(rules_of(&findings), ["fs-scope", "fs-scope"], "{findings:?}");
    assert!(findings[1].message.contains("SpillTier"), "{findings:?}");
}

#[test]
fn fs_scope_allows_reads_the_spill_module_and_unscoped_crates() {
    let read = "pub fn f() -> Vec<u8> { std::fs::read(\"x\").unwrap_or_default() }\n";
    assert_eq!(check("crates/netlist/src/parse.rs", read), [], "reads never fire");
    let write = "pub fn f() { let _ = std::fs::write(\"x\", b\"y\"); }\n";
    assert_eq!(check("crates/eval/src/spill.rs", write), [], "the sanctioned spill tier");
    assert_eq!(check("crates/cli/src/lib.rs", write), [], "cli owns real I/O");
    assert_eq!(check("crates/eval/tests/t.rs", write), [], "tests manage their own scratch");
}

#[test]
fn fs_scope_pragma_waives_with_a_reason() {
    let findings = check(
        "crates/graphs/src/dump.rs",
        r#"
pub fn debug_dump(path: &std::path::Path, dot: &str) {
    // lint:allow(fs-scope): debug artifact behind an explicit flag, never read back
    let _ = std::fs::write(path, dot);
}
"#,
    );
    assert_eq!(findings, [], "a reasoned pragma waives the write");
}

// ------------------------------------------------------------------- pragma

#[test]
fn malformed_pragmas_are_findings_and_cannot_be_waived() {
    let unknown =
        check("crates/hidap/src/pass.rs", "// lint:allow(no-such-rule): reason\npub fn f() {}\n");
    assert_eq!(rules_of(&unknown), ["pragma"], "{unknown:?}");

    let missing_reason =
        check("crates/hidap/src/pass.rs", "// lint:allow(hash-iter)\npub fn f() {}\n");
    assert_eq!(rules_of(&missing_reason), ["pragma"], "{missing_reason:?}");
}

// ------------------------------------------------------------------- meta

#[test]
fn every_rule_is_documented_and_resolvable() {
    assert_eq!(RULES.len(), 7);
    for rule in RULES {
        assert!(rule_named(rule.name).is_some());
        assert!(!rule.summary.is_empty());
        assert!(rule.explain.len() > 100, "{} needs a real explanation", rule.name);
    }
    assert!(rule_named("no-such-rule").is_none());
}

#[test]
fn findings_render_as_file_line_rule_message() {
    let f = Finding {
        file: "crates/x/src/y.rs".to_string(),
        line: 7,
        rule: "hash-iter",
        message: "for-loop over hash-ordered m".to_string(),
    };
    assert_eq!(f.to_string(), "crates/x/src/y.rs:7: hash-iter: for-loop over hash-ordered m");
}
