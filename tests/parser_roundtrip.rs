//! Integration tests of the file-format path: generator → Verilog/LEF/DEF
//! emission → parsers → placement.

use hidap::{HidapConfig, HidapFlow};
use netlist::def::parse_def;
use netlist::lef::parse_lef;
use netlist::verilog::{parse_verilog, ElaborateOptions};
use workload::emit::{emit_def, emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn small_soc() -> workload::GeneratedDesign {
    SocGenerator::new(SocConfig {
        name: "rt_soc".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 3, 8),
            SubsystemConfig::balanced("u_dsp", 2, 8),
            SubsystemConfig::balanced("u_io", 1, 4),
        ],
        channels: vec![(0, 1), (1, 2), (2, 0)],
        io_subsystems: vec![2],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 17,
    })
    .generate()
}

#[test]
fn verilog_lef_roundtrip_preserves_structure() {
    let generated = small_soc();
    let verilog = emit_verilog(&generated.design);
    let lef = emit_lef(&generated.design, &generated.library, 2000);

    let parsed_lef = parse_lef(&lef).expect("emitted LEF must parse");
    assert_eq!(parsed_lef.dbu_per_micron, 2000);
    for m in generated.library.blocks() {
        let p = parsed_lef.library.find_macro(&m.name).expect("macro definition survives");
        assert_eq!((p.width, p.height), (m.width, m.height));
    }

    let opts = ElaborateOptions { library: generated.library.clone(), ..Default::default() };
    let parsed =
        parse_verilog(&verilog, Some("rt_soc"), &opts).expect("emitted Verilog must parse");
    assert_eq!(parsed.num_cells(), generated.design.num_cells());
    assert_eq!(parsed.num_macros(), generated.design.num_macros());
    assert_eq!(parsed.num_ports(), generated.design.num_ports());
    parsed.validate().expect("re-parsed netlist is consistent");
}

#[test]
fn reparsed_design_can_be_placed() {
    let generated = small_soc();
    let verilog = emit_verilog(&generated.design);
    let opts = ElaborateOptions { library: generated.library.clone(), ..Default::default() };
    let mut design = parse_verilog(&verilog, Some("rt_soc"), &opts).expect("parse");
    design.set_die(generated.design.die());
    let placement =
        HidapFlow::new(HidapConfig::fast()).run(&design).expect("flow on re-parsed design");
    assert_eq!(placement.macros.len(), generated.design.num_macros());
    assert!(placement.is_legal(&design));
}

#[test]
fn def_roundtrip_preserves_placement() {
    let generated = small_soc();
    let design = &generated.design;
    let placement = HidapFlow::new(HidapConfig::fast()).run(design).expect("flow");
    let def_text = emit_def(design, 1000, &placement.to_map());
    let parsed = parse_def(&def_text).expect("emitted DEF must parse");
    assert_eq!(parsed.die, design.die());
    assert_eq!(parsed.components.len(), design.num_macros());
    // every macro's location survives the round trip
    for placed in &placement.macros {
        let name = &design.cell(placed.cell).name;
        let comp = parsed.find_component(name).expect("component present");
        assert_eq!(comp.location, placed.location, "location of {name}");
        assert_eq!(comp.orientation, placed.orientation, "orientation of {name}");
    }
    // and applying the DEF back onto a fresh copy reproduces the same map
    let mut fresh = design.clone();
    let restored = parsed.apply_to(&mut fresh);
    assert_eq!(restored.len(), placement.macros.len());
    for placed in &placement.macros {
        assert_eq!(restored[&placed.cell], (placed.location, placed.orientation));
    }
}
