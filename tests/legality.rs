//! Property-based integration tests: for randomly parameterized synthetic
//! SoCs, every flow must produce a legal placement (no overlaps, everything
//! inside the die) and the evaluation metrics must stay in range.

use hidap::{HidapConfig, HidapFlow};
use proptest::prelude::*;
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn arbitrary_soc() -> impl Strategy<Value = SocConfig> {
    (
        2usize..4, // number of subsystems
        1usize..5, // macros per subsystem
        prop::sample::select(vec![4usize, 8, 16]),
        0.3f64..0.65, // utilization
        1u64..1000,   // seed
    )
        .prop_map(|(subs, macros, bits, utilization, seed)| SocConfig {
            name: "prop_soc".into(),
            subsystems: (0..subs)
                .map(|i| {
                    // Macro footprints are kept well below the die dimensions
                    // (as in real SoCs) so that dies are always several macros
                    // wide; single-macro-wide dies are a packing corner case
                    // outside the placer's contract.
                    let mut sub = SubsystemConfig::balanced(format!("u_s{i}"), macros, bits);
                    sub.macro_size = (24_000, 16_000);
                    sub
                })
                .collect(),
            channels: (0..subs).map(|i| (i, (i + 1) % subs)).collect(),
            io_subsystems: vec![0],
            io_bits: bits,
            utilization,
            aspect_ratio: 1.2,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn hidap_always_produces_legal_placements(config in arbitrary_soc()) {
        let generated = SocGenerator::new(config).generate();
        let design = &generated.design;
        prop_assert!(design.validate().is_ok());
        let placement = HidapFlow::new(HidapConfig::fast()).run(design).expect("flow");
        prop_assert_eq!(placement.macros.len(), design.num_macros());
        prop_assert!(placement.is_legal(design), "overlap area {}", placement.total_overlap(design));
    }

    #[test]
    fn baseline_always_produces_legal_placements(config in arbitrary_soc()) {
        let generated = SocGenerator::new(config).generate();
        let design = &generated.design;
        let placement = baselines::IndEda::new(baselines::IndEdaConfig::fast())
            .run(design)
            .expect("baseline flow");
        prop_assert!(placement.is_legal(design));
    }

    #[test]
    fn metrics_stay_in_range(config in arbitrary_soc()) {
        let generated = SocGenerator::new(config).generate();
        let design = &generated.design;
        let placement = HidapFlow::new(HidapConfig::fast()).run(design).expect("flow");
        let metrics = eval::Evaluator::standard().evaluate(design, &placement);
        prop_assert!(metrics.wirelength_m >= 0.0);
        prop_assert!((0.0..=100.0).contains(&metrics.grc_percent()));
        prop_assert!(metrics.wns_percent() <= 0.0);
        prop_assert!(metrics.tns_ns() <= 0.0);
        prop_assert!(metrics.density.peak() >= 0.0);
    }
}
