//! End-to-end integration tests: generator → HiDaP → evaluation.

use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::{fig1_design, generate_circuit};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

#[test]
fn fig1_design_places_all_macros_legally() {
    let generated = fig1_design();
    let placement = HidapFlow::new(HidapConfig::fast()).run(&generated.design).expect("flow");
    assert_eq!(placement.macros.len(), 16);
    assert!(placement.is_legal(&generated.design));
    // the two clusters must be visible at the top level
    assert!(placement.top_blocks.len() >= 2);
}

#[test]
fn c1_standin_full_pipeline() {
    let generated = generate_circuit("c1");
    let design = &generated.design;
    let placement = HidapFlow::new(HidapConfig::fast()).run(design).expect("flow");
    assert_eq!(placement.macros.len(), 32);
    assert!(placement.is_legal(design));

    let metrics = Evaluator::new(EvalConfig::standard()).evaluate(design, &placement);
    assert!(metrics.wirelength_m > 0.0);
    assert!(metrics.hpwl.routed_nets > 0);
    assert!(metrics.grc_percent() >= 0.0 && metrics.grc_percent() <= 100.0);
    assert!(metrics.wns_percent() <= 0.0);
    assert!(metrics.density.peak() > 0.0);
}

#[test]
fn dataflow_aware_placement_beats_random_macro_scatter() {
    // HiDaP should comfortably beat a placement that scatters macros without
    // looking at connectivity (a sanity check on the whole objective chain).
    let generated = fig1_design();
    let design = &generated.design;
    // one evaluation session for both candidates
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    let hidap = HidapFlow::new(HidapConfig::fast()).run(design).expect("flow");
    let hidap_wl = evaluator.evaluate(design, &hidap).wirelength_m;

    // adversarial scatter: place macros round-robin in opposite corners so
    // connected clusters are torn apart, then legalize via the same helper
    use hidap::legalize::{legalize_macros, MacroFootprint, MacroFootprints};
    use std::collections::HashMap;
    let die = design.die();
    let mut footprints = MacroFootprints::for_design(design);
    for (i, m) in design.macros().enumerate() {
        let corner = match i % 2 {
            0 => geometry::Point::new(die.llx, die.lly),
            _ => geometry::Point::new(
                die.urx - design.cell(m).width,
                die.ury - design.cell(m).height,
            ),
        };
        footprints.insert(m, MacroFootprint { location: corner, rotated: false });
    }
    legalize_macros(design, die, &mut footprints);
    let scatter_map: HashMap<_, _> =
        footprints.iter().map(|(c, fp)| (c, (fp.location, geometry::Orientation::N))).collect();
    let scatter_wl = evaluator.evaluate(design, &scatter_map).wirelength_m;

    assert!(
        hidap_wl < scatter_wl,
        "dataflow-aware placement ({hidap_wl:.4} m) should beat adversarial scatter ({scatter_wl:.4} m)"
    );
}

#[test]
fn flow_is_deterministic_across_runs() {
    let generated = generate_circuit("c8");
    let a = HidapFlow::new(HidapConfig::fast()).run(&generated.design).expect("flow");
    let b = HidapFlow::new(HidapConfig::fast()).run(&generated.design).expect("flow");
    assert_eq!(a, b);
}

#[test]
fn high_utilization_design_still_legalizes() {
    // A design where macros occupy most of the die exercises the area
    // budgeting and legalization paths.
    let config = SocConfig {
        name: "dense".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_a", 6, 8),
            SubsystemConfig::balanced("u_b", 6, 8),
        ],
        channels: vec![(0, 1)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.8,
        aspect_ratio: 1.0,
        seed: 11,
    };
    let generated = SocGenerator::new(config).generate();
    let placement = HidapFlow::new(HidapConfig::fast()).run(&generated.design).expect("flow");
    assert!(placement.is_legal(&generated.design), "dense design must still legalize");
}
