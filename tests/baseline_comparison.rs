//! Integration tests comparing the three flows — the qualitative claims of
//! Tables II/III should hold on the synthetic stand-ins: HiDaP beats the
//! flat connectivity-driven baseline on dataflow-dominated designs, and the
//! handFP oracle is at least as good as a single HiDaP run.

use baselines::{HandFp, HandFpConfig, IndEda, IndEdaConfig};
use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::fig1_design;

#[test]
fn all_three_flows_produce_legal_placements() {
    let generated = fig1_design();
    let design = &generated.design;

    let indeda = IndEda::new(IndEdaConfig::fast()).run(design).expect("IndEDA");
    assert!(indeda.is_legal(design));
    assert_eq!(indeda.macros.len(), 16);

    let hidap = HidapFlow::new(HidapConfig::fast()).run(design).expect("HiDaP");
    assert!(hidap.is_legal(design));

    let (handfp, _) = HandFp::new(HandFpConfig::fast()).run(design).expect("handFP");
    assert!(handfp.is_legal(design));
}

#[test]
fn hidap_wirelength_competitive_with_flat_baseline() {
    // On a design with two tightly-coupled macro clusters and a pipeline
    // between them, the dataflow-driven flow should not lose to the flat
    // baseline by more than a small margin (and usually wins).
    let generated = fig1_design();
    let design = &generated.design;
    // one session measures both flows under identical conditions
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    let indeda = IndEda::new(IndEdaConfig::fast()).run(design).expect("IndEDA");
    let indeda_wl = evaluator.evaluate(design, &indeda).wirelength_m;

    let hidap = HidapFlow::new(HidapConfig::fast()).run(design).expect("HiDaP");
    let hidap_wl = evaluator.evaluate(design, &hidap).wirelength_m;

    assert!(
        hidap_wl <= indeda_wl * 1.10,
        "HiDaP WL {hidap_wl:.4} m should be within 10% of the baseline {indeda_wl:.4} m"
    );
}

#[test]
fn oracle_is_at_least_as_good_as_one_hidap_run() {
    let generated = fig1_design();
    let design = &generated.design;
    let single = HidapFlow::new(HidapConfig::fast().with_seed(1).with_lambda(0.5))
        .run(design)
        .expect("HiDaP");
    let single_wl = Evaluator::new(EvalConfig::standard()).evaluate(design, &single).wirelength_m;

    let oracle_cfg = HandFpConfig {
        seeds: vec![1, 2],
        lambdas: vec![0.2, 0.5, 0.8],
        base: HidapConfig::fast(),
        ..HandFpConfig::default()
    };
    let (_, oracle_wl) = HandFp::new(oracle_cfg).run(design).expect("handFP");
    assert!(oracle_wl <= single_wl + 1e-12);
}
