//! End-to-end tests of the unified engine API across every registered flow:
//! registry resolution, the `Placer` trait, stage observability, deadlines,
//! batch sweeps, and the CLI's `--sweep`/`--jobs` path.

use placer_core::{
    BatchGrid, BatchRunner, CollectingObserver, EffortLevel, PlaceContext, PlaceError,
    PlaceRequest, StageEvent,
};
use std::sync::Arc;
use workload::presets::fig1_design;

#[test]
fn every_registered_flow_places_through_the_trait() {
    let generated = fig1_design();
    let design = &generated.design;
    let registry = baselines::default_registry();
    let names = registry.names();
    assert_eq!(names, vec!["handfp", "hidap", "indeda"]);
    for name in names {
        let placer = registry.create(&name).unwrap();
        let request = PlaceRequest::new(design).with_effort(EffortLevel::Fast).with_seed(1);
        let outcome = placer
            .place(&request, &mut PlaceContext::new())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(outcome.flow, name);
        assert_eq!(outcome.placement.macros.len(), design.num_macros(), "{name}");
        assert!(outcome.placement.is_legal(design), "{name} placement must be legal");
        assert!(!outcome.stage_timings.is_empty(), "{name} must report stage timings");
    }
}

#[test]
fn observer_sees_hidap_stage_events_through_the_engine() {
    let generated = fig1_design();
    let design = &generated.design;
    let obs = Arc::new(CollectingObserver::new());
    let placer = baselines::default_registry().create("hidap").unwrap();
    let mut ctx = PlaceContext::new().with_observer(obs.clone());
    placer.place(&PlaceRequest::new(design).with_effort(EffortLevel::Fast), &mut ctx).unwrap();
    assert_eq!(obs.count(|e| matches!(e, StageEvent::FlowStarted { .. })), 1);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::HierarchyBuilt { .. })), 1);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::ShapeCurvesReady { .. })), 1);
    assert!(obs.count(|e| matches!(e, StageEvent::LevelFloorplanned { .. })) >= 2);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::LegalizationDone { .. })), 1);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::FlippingDone { .. })), 1);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::FlowFinished { .. })), 1);
}

#[test]
fn handfp_emits_batch_events_for_every_candidate() {
    let generated = fig1_design();
    let design = &generated.design;
    let obs = Arc::new(CollectingObserver::new());
    let oracle = baselines::HandFp::new(baselines::HandFpConfig::fast());
    let mut ctx = PlaceContext::new().with_observer(obs.clone());
    placer_core::Placer::place(&oracle, &PlaceRequest::new(design), &mut ctx).unwrap();
    let candidates = oracle.num_candidates();
    assert_eq!(obs.count(|e| matches!(e, StageEvent::BatchRunStarted { .. })), candidates);
    assert_eq!(obs.count(|e| matches!(e, StageEvent::BatchRunFinished { .. })), candidates);
}

#[test]
fn batch_runner_works_over_any_registered_flow() {
    let generated = fig1_design();
    let design = &generated.design;
    // indeda has no λ knob but still participates in seed sweeps
    let placer = baselines::default_registry().create("indeda").unwrap();
    let grid = BatchGrid::new(vec![1, 2, 3], vec![0.5]);
    let batch = BatchRunner::new()
        .with_jobs(2)
        .run(
            placer.as_ref(),
            &PlaceRequest::new(design).with_effort(EffortLevel::Fast),
            &grid,
            &mut PlaceContext::new(),
        )
        .unwrap();
    assert_eq!(batch.runs.len(), 3);
    assert!(batch.winner.placement.is_legal(design));
}

#[test]
fn deadline_cancels_a_long_batch() {
    let generated = fig1_design();
    let design = &generated.design;
    let placer = baselines::default_registry().create("hidap").unwrap();
    let grid = BatchGrid::new((1..=16).collect(), vec![0.2, 0.5, 0.8]);
    let mut ctx = PlaceContext::new().with_deadline(std::time::Duration::from_millis(1));
    let err = BatchRunner::new()
        .with_jobs(2)
        .run(placer.as_ref(), &PlaceRequest::new(design), &grid, &mut ctx)
        .unwrap_err();
    assert_eq!(err, PlaceError::DeadlineExceeded);
}

#[test]
fn sweeping_the_composite_handfp_flow_is_rejected() {
    let generated = fig1_design();
    let opts = cli::Options {
        flow: "handfp".into(),
        sweep: true,
        effort: "fast".into(),
        ..cli::Options::default()
    };
    let err = cli::place(&generated.design, &opts).unwrap_err();
    assert!(err.contains("already sweeps"), "{err}");
}

#[test]
fn indeda_sweep_collapses_the_lambda_axis() {
    let generated = fig1_design();
    let opts = cli::Options {
        flow: "indeda".into(),
        sweep: true,
        effort: "fast".into(),
        seeds: vec![1, 2],
        lambdas: vec![0.2, 0.5, 0.8],
        ..cli::Options::default()
    };
    let (_, info) = cli::place_outcome(&generated.design, &opts).unwrap();
    // 2 seeds x 1 collapsed λ, not 2 x 3
    assert_eq!(info.candidates, 2);
}

#[test]
fn handfp_honors_the_die_override() {
    use geometry::Rect;
    let generated = fig1_design();
    let design = &generated.design;
    let original = design.die();
    let wider = Rect::new(original.llx, original.lly, original.urx * 2, original.ury);
    let oracle = baselines::HandFp::new(baselines::HandFpConfig::fast());
    let outcome = placer_core::Placer::place(
        &oracle,
        &PlaceRequest::new(design).with_die(wider),
        &mut PlaceContext::new(),
    )
    .unwrap();
    // macros may use (and with this aspect ratio, some do) area outside the
    // original die; all stay inside the override
    let mut widened = design.clone();
    widened.set_die(wider);
    assert!(outcome.placement.is_legal(&widened));
}

#[test]
fn cli_sweep_flag_drives_the_batch_engine() {
    use workload::emit::{emit_lef, emit_verilog};
    use workload::{SocConfig, SocGenerator, SubsystemConfig};

    let generated = SocGenerator::new(SocConfig {
        name: "sweep_soc".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 2, 8),
            SubsystemConfig::balanced("u_dsp", 2, 8),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 5,
    })
    .generate();
    let dir = std::env::temp_dir().join(format!("hidap_engine_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let verilog = dir.join("sweep_soc.v");
    let lef = dir.join("sweep_soc.lef");
    std::fs::write(&verilog, emit_verilog(&generated.design)).unwrap();
    std::fs::write(&lef, emit_lef(&generated.design, &generated.library, 1000)).unwrap();

    let args: Vec<String> = [
        "--verilog",
        verilog.to_str().unwrap(),
        "--lef",
        lef.to_str().unwrap(),
        "--top",
        "sweep_soc",
        "--effort",
        "fast",
        "--sweep",
        "--jobs",
        "2",
        "--seeds",
        "1,2",
        "--lambdas",
        "0.2,0.8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let opts = cli::parse_args(&args).expect("arguments parse");
    let output = cli::run(&opts).expect("CLI sweep succeeds");
    assert!(output.contains("placed 4 macros"), "{output}");
    assert!(output.contains("sweep: 4 candidates"), "{output}");
    assert!(output.contains("winner seed"), "{output}");

    // the sweep result is independent of the worker count
    let serial_opts = cli::Options { jobs: 1, ..opts.clone() };
    let (design, _) = cli::load_design(&opts).unwrap();
    let a = cli::place(&design, &opts).unwrap();
    let b = cli::place(&design, &serial_opts).unwrap();
    assert_eq!(a, b);

    let _ = std::fs::remove_dir_all(&dir);
}
