//! Byte-identity of the streaming DEF emitter.
//!
//! `write_def_to` replaced a `String`-building emitter; these tests pin its
//! output against a verbatim copy of the old implementation at `large_soc`
//! scale, so the streaming rewrite cannot silently change the file format.

use geometry::{Orientation, Point, Rect};
use netlist::def::{placement_entries, port_entries, write_def, write_def_to, PlacementEntry};
use std::collections::HashMap;

/// The pre-streaming emitter, copied verbatim: the reference for byte
/// identity.
fn reference_write_def(
    design_name: &str,
    dbu_per_micron: i64,
    die: Rect,
    placements: &[PlacementEntry],
    pins: &[(String, Point)],
) -> String {
    let mut out = String::new();
    out.push_str("VERSION 5.8 ;\n");
    out.push_str(&format!("DESIGN {design_name} ;\n"));
    out.push_str(&format!("UNITS DISTANCE MICRONS {dbu_per_micron} ;\n"));
    out.push_str(&format!("DIEAREA ( {} {} ) ( {} {} ) ;\n", die.llx, die.lly, die.urx, die.ury));
    out.push_str(&format!("COMPONENTS {} ;\n", placements.len()));
    for p in placements {
        let status = if p.fixed { "FIXED" } else { "PLACED" };
        out.push_str(&format!(
            "- {} {} + {} ( {} {} ) {} ;\n",
            p.name, p.cell, status, p.location.x, p.location.y, p.orientation
        ));
    }
    out.push_str("END COMPONENTS\n");
    out.push_str(&format!("PINS {} ;\n", pins.len()));
    for (name, pos) in pins {
        out.push_str(&format!("- {name} + NET {name} + PLACED ( {} {} ) N ;\n", pos.x, pos.y));
    }
    out.push_str("END PINS\n");
    out.push_str("END DESIGN\n");
    out
}

fn stream_to_string(
    design_name: &str,
    dbu: i64,
    die: Rect,
    entries: &[PlacementEntry],
    pins: &[(String, Point)],
) -> String {
    let mut buf = Vec::new();
    write_def_to(&mut buf, design_name, dbu, die, entries, pins).expect("Vec write cannot fail");
    String::from_utf8(buf).expect("DEF is UTF-8")
}

#[test]
fn streaming_emitter_matches_reference_at_large_soc_scale() {
    let generated = workload::presets::generate_circuit("large_soc");
    let design = &generated.design;

    // deterministic synthetic macro placement: a grid walk in macro-id order
    let die = design.die();
    let mut placements: HashMap<netlist::CellId, (Point, Orientation)> = HashMap::new();
    for (i, id) in design.macros().enumerate() {
        let i = i as i64;
        let x = die.llx + (i % 17) * 1000;
        let y = die.lly + (i / 17) * 2000;
        let orient = if i % 3 == 0 { Orientation::N } else { Orientation::FS };
        placements.insert(id, (Point { x, y }, orient));
    }

    let entries = placement_entries(design, &placements, true);
    let pins = port_entries(design);
    assert!(entries.len() >= 200, "large_soc should have >= 200 macros, got {}", entries.len());

    let reference = reference_write_def(design.name(), 2000, die, &entries, &pins);
    let wrapped = write_def(design.name(), 2000, die, &entries, &pins);
    let streamed = stream_to_string(design.name(), 2000, die, &entries, &pins);

    assert_eq!(streamed, reference, "streamed DEF differs from the old emitter");
    assert_eq!(wrapped, reference, "write_def wrapper differs from the old emitter");

    // the streaming wrapper in workload takes the same path
    let mut via_workload = Vec::new();
    workload::emit::emit_def_to(&mut via_workload, design, 2000, &placements)
        .expect("Vec write cannot fail");
    let direct = workload::emit::emit_def(design, 2000, &placements);
    assert_eq!(String::from_utf8(via_workload).expect("DEF is UTF-8"), direct);
}

#[test]
fn streaming_emitter_matches_reference_on_a_multi_megabyte_body() {
    // a DEF body big enough that buffering behavior (chunk boundaries,
    // formatting of negative and large coordinates) actually gets exercised
    let die = Rect { llx: -5000, lly: -5000, urx: 9_000_000, ury: 9_000_000 };
    let entries: Vec<PlacementEntry> = (0..100_000)
        .map(|i| PlacementEntry {
            name: format!("u_core/blk_{}/reg_q[{}]", i % 997, i),
            cell: format!("DFF_X{}", 1 + i % 4),
            location: Point {
                x: -5000 + (i as i64 * 137) % 8_000_000,
                y: (i as i64 * 7919) % 8_000_000,
            },
            orientation: match i % 4 {
                0 => Orientation::N,
                1 => Orientation::S,
                2 => Orientation::FN,
                _ => Orientation::FS,
            },
            fixed: i % 5 == 0,
        })
        .collect();
    let pins: Vec<(String, Point)> =
        (0..512).map(|i| (format!("io[{i}]"), Point { x: i, y: -i })).collect();

    let reference = reference_write_def("mega", 1000, die, &entries, &pins);
    assert!(reference.len() > 4 << 20, "expected a multi-MB DEF, got {} bytes", reference.len());
    let streamed = stream_to_string("mega", 1000, die, &entries, &pins);
    assert_eq!(streamed, reference);
}
