//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and result
//! types so they stay serialization-ready, but nothing in the build actually
//! serializes through serde (the one JSON emitter is hand-rolled). These
//! derives therefore expand to nothing; the `serde` shim provides matching
//! blanket-implemented marker traits.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
