//! Offline stand-in for `serde`: marker traits plus no-op derive macros.
//!
//! See the `serde_derive` shim for why this is sufficient: the workspace only
//! tags types as serialization-ready, it never drives a serde serializer.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
