//! Offline stand-in for the `rand` crate: the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, plus [`rngs::StdRng`]. Only the API
//! surface used by this workspace is provided.

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Named RNG types.

    use rand_core::{RngCore, SeedableRng};

    /// The standard RNG, backed by ChaCha8 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng(rand_chacha::ChaCha8Rng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            Self(rand_chacha::ChaCha8Rng::from_seed(seed))
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait RandValue: Sized {
    /// Samples a value from the full/unit range of the type.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl RandValue for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandValue for f32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl RandValue for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl RandValue for u32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl RandValue for u64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`high` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]` (`high` inclusive).
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                low.wrapping_add((word % span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = ((high as i128).wrapping_sub(low as i128) as u128) + 1;
                let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                low.wrapping_add((word % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for i128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = high.wrapping_sub(low) as u128;
        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        low.wrapping_add((word % span) as i128)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        let span = (high.wrapping_sub(low) as u128).wrapping_add(1);
        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if span == 0 {
            return word as i128; // full-width range
        }
        low.wrapping_add((word % span) as i128)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::rand(rng) * (high - low)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + f64::rand(rng) * (high - low)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Extension methods for random value generation, blanket-implemented for
/// every [`RngCore`] (mirrors the real `rand::Rng`).
pub trait Rng: RngCore {
    /// A random value of type `T` (for floats: uniform in `[0, 1)`).
    fn gen<T: RandValue>(&mut self) -> T {
        T::rand(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(takes_rng(&mut rng) < 100);
    }
}
