//! Offline stand-in for the `rand_core` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small subset of the `rand_core` API the placer actually uses: the
//! [`RngCore`] and [`SeedableRng`] traits with the same method signatures and
//! the same SplitMix64-based `seed_from_u64` seeding scheme as the real crate.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// One step of the SplitMix64 sequence, used to expand small seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An RNG that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed material, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 (the same
    /// scheme the real `rand_core` uses, so seeds have good bit dispersion).
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&z[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            self.0 as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_every_byte() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[4], 2);
    }

    #[test]
    fn splitmix_disperses_small_seeds() {
        let mut a = 1;
        let mut b = 2;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b));
    }
}
