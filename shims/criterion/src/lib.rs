//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/structure surface of criterion's API with a simple
//! wall-clock measurement loop (median of N samples, one call per sample)
//! instead of criterion's statistical machinery. Good enough to spot
//! order-of-magnitude regressions without any external dependencies.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark driver; collects and prints timings.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, sample_size: 10 }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: 10 };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a single function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Benchmarks a function parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&id.0);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of one call each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed().as_secs_f64());
            drop(out);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("  {name}: no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let best = self.samples[0];
        println!(
            "  {name}: median {:.3} ms (best {:.3} ms, {} samples)",
            median * 1e3,
            best * 1e3,
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
