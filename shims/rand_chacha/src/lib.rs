//! Offline stand-in for the `rand_chacha` crate: a real ChaCha8 keystream
//! generator behind the `rand_core` traits. Output is deterministic for a
//! given seed (the reproducibility guarantee every flow in this workspace
//! relies on) but is not bit-for-bit identical to the upstream crate.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut initial = [0u32; BLOCK_WORDS];
        initial[..4].copy_from_slice(&CONSTANTS);
        initial[4..12].copy_from_slice(&self.key);
        initial[12] = self.counter as u32;
        initial[13] = (self.counter >> 32) as u32;
        // nonce words 14..16 stay zero
        let mut state = initial;
        for _ in 0..4 {
            // one double round = column round + diagonal round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        }
        Self { key, counter: 0, buffer: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_continues_past_one_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_bits_look_balanced() {
        // a crude sanity check that the keystream is not obviously broken
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let total = 1000 * 32;
        assert!(ones > total / 3 && ones < 2 * total / 3, "ones = {ones}/{total}");
    }
}
