//! Test-runner types: configuration, RNG and case errors.

use std::fmt;

/// The RNG driving case generation (deterministic per test).
pub type TestRng = rand::rngs::StdRng;

/// Creates the deterministic case RNG (used by the `proptest!` expansion so
/// consumer crates don't need a direct `rand` dependency).
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum rejected cases before giving up (accepted for compatibility;
    /// this shim has no `prop_assume`, so nothing is ever rejected).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // the real default of 256 cases is overkill for the heavyweight flow
        // tests; 32 keep good coverage at CI-friendly runtimes
        Self { cases: 32, max_global_rejects: 1024 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
