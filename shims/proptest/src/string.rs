//! Regex-subset string generation for string-literal strategies.
//!
//! Supports the constructs the workspace's patterns use: literal characters,
//! character classes with ranges (`[a-z0-9_]`), and `{n}` / `{n,m}` counted
//! repetition, plus `?`, `*` and `+` with a small repetition cap. Anything
//! else is emitted literally.

use crate::test_runner::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn class_pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
    let mut idx = rng.gen_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if idx < span {
            return char::from_u32(lo as u32 + idx).unwrap_or(lo);
        }
        idx -= span;
    }
    ranges[0].0
}

/// Generates one string matching the supported regex subset of `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // parse one atom
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                if ranges.is_empty() {
                    ranges.push(('a', 'a'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // parse an optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            if let Some(close) = close {
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo = lo.trim().parse().unwrap_or(0);
                    let hi = hi.trim().parse().unwrap_or(lo);
                    (lo, hi)
                } else {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            } else {
                (1, 1)
            }
        } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let count = if min == max { min } else { rng.gen_range(min..=max) };
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => out.push(class_pick(ranges, rng)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
    }

    #[test]
    fn counted_repetition() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = generate_from_pattern("[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| c.is_ascii_digit()));
    }
}
