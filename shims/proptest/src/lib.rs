//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API used by this workspace's property tests:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, numeric
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<bool>()`, regex-subset string strategies
//! and [`test_runner::ProptestConfig`]. Case generation is deterministic:
//! every test derives its RNG seed from its own name, so failures reproduce.
//! There is no shrinking — a failing case reports its values via panic.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude`.

    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Module alias so `prop::collection::vec` etc. resolve after a glob
        //! import, as with the real crate.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Types with a canonical default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: strategy::Strategy<Value = Self>;
    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The canonical strategy for `T` (only the types the workspace needs).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// FNV-1a hash of a test name, used to derive per-test RNG seeds.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs property-test functions over generated inputs.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let base_seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut __runner = $crate::test_runner::new_rng(base_seed.wrapping_add(case));
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __runner);)*
                    let __inputs =
                        [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*].join(", ");
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {case} of {} failed: {e}\ninputs: {__inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}
