//! The [`Strategy`] trait and the strategy combinators the workspace uses.

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

// Strategies are generated through shared references inside combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize, f64);

/// String literals act as regex-subset string strategies, as in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0i64..10, 5u32..=6).prop_map(|(a, b)| a + b as i64);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn just_returns_fixed_value() {
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!(Just(7).generate(&mut rng), 7);
    }
}
