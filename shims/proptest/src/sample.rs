//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A strategy choosing uniformly from a fixed set of values.
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.gen_range(0..self.choices.len())].clone()
    }
}

/// Selects uniformly from `choices` (must be non-empty).
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select: empty choice set");
    Select { choices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn select_only_returns_given_values() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = select(vec![4usize, 8, 16]);
        for _ in 0..100 {
            assert!([4, 8, 16].contains(&strat.generate(&mut rng)));
        }
    }
}
