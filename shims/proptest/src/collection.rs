//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A vector-length specification: an exact count or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self(range)
    }
}

/// A strategy producing `Vec`s with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let range = self.size.0.clone();
        let len = if range.is_empty() { range.start } else { rng.gen_range(range) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of values from `element` with a length in `size` (an
/// exact count or a `lo..hi` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = vec(0i64..100, 2..5);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }
}
