//! Umbrella crate for the HiDaP reproduction workspace.
//!
//! Re-exports the workspace crates so the top-level integration tests and
//! examples can depend on a single package. The interesting code lives in
//! `crates/`:
//!
//! * [`placer_core`] — the unified `Placer` engine API: trait-based flows,
//!   stage observability ([`placer_core::FlowObserver`]), cancellation and
//!   deadlines ([`placer_core::PlaceContext`]), and parallel seed×λ batch
//!   execution ([`placer_core::BatchRunner`]),
//! * [`hidap`] — the paper's RTL-aware dataflow-driven macro placer,
//! * [`baselines`] — the IndEDA-style flat placer and the handFP oracle,
//! * [`eval`] — the shared measurement pipeline,
//! * [`workload`] — synthetic hierarchical SoC generators.

#![forbid(unsafe_code)]

pub use baselines;
pub use cli;
pub use eval;
pub use geometry;
pub use graphs;
pub use hidap;
pub use netlist;
pub use placer_core;
pub use workload;
