//! Sweep the λ parameter that blends block flow and macro flow (Sect. IV-D)
//! and observe its effect on measured wirelength — the knob the paper
//! explores with λ ∈ {0.2, 0.5, 0.8}.
//!
//! Run with: `cargo run --release -p bench --example lambda_sweep_example`

use eval::{evaluate_placement, EvalConfig};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::fig1_design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = fig1_design();
    let design = &generated.design;
    println!(
        "fig. 1 design: {} macros, {} cells\n",
        design.num_macros(),
        design.num_cells()
    );

    println!("{:>8} {:>14} {:>10} {:>10}", "lambda", "WL (m)", "GRC%", "WNS%");
    let eval_config = EvalConfig::standard();
    let mut best = (f64::INFINITY, 0.0);
    for lambda in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let config = HidapConfig::default().with_lambda(lambda);
        let placement = HidapFlow::new(config).run(design)?;
        let metrics = evaluate_placement(design, &placement.to_map(), &eval_config);
        println!(
            "{:>8.1} {:>14.4} {:>10.2} {:>10.2}",
            lambda,
            metrics.wirelength_m,
            metrics.grc_percent(),
            metrics.wns_percent()
        );
        if metrics.wirelength_m < best.0 {
            best = (metrics.wirelength_m, lambda);
        }
    }
    println!("\nbest wirelength {:.4} m at lambda = {:.1}", best.0, best.1);
    println!("(the paper reports HiDaP as the best of three lambda values per circuit)");
    Ok(())
}
