//! Sweep the λ parameter that blends block flow and macro flow (Sect. IV-D)
//! and observe its effect on measured wirelength — the knob the paper
//! explores with λ ∈ {0.2, 0.5, 0.8}.
//!
//! The sweep runs through the engine's `BatchRunner`, so all λ values are
//! explored in parallel across the available cores and the winner is picked
//! deterministically.
//!
//! Run with: `cargo run --release --example lambda_sweep_example`

use hidap::{HidapConfig, HidapFlow};
use placer_core::{BatchGrid, BatchRunner, PlaceContext, PlaceRequest, WirelengthObjective};
use workload::presets::fig1_design;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = fig1_design();
    let design = &generated.design;
    println!("fig. 1 design: {} macros, {} cells\n", design.num_macros(), design.num_cells());

    let placer = HidapFlow::new(HidapConfig::default());
    let grid = BatchGrid::new(vec![1], vec![0.0, 0.2, 0.5, 0.8, 1.0]);
    let batch = BatchRunner::new().with_objective(Box::new(WirelengthObjective::standard())).run(
        &placer,
        &PlaceRequest::new(design),
        &grid,
        &mut PlaceContext::new(),
    )?;

    println!("{:>8} {:>14}", "lambda", "WL (m)");
    for run in &batch.runs {
        println!(
            "{:>8.1} {:>14.4}{}",
            run.lambda,
            run.score.unwrap_or(f64::NAN),
            if run.index == batch.winner_index { "  <- winner" } else { "" },
        );
    }
    println!(
        "\nbest wirelength {:.4} m at lambda = {:.1}",
        batch.winner_score,
        batch.winner.lambda.unwrap_or(f64::NAN),
    );
    println!("(the paper reports HiDaP as the best of three lambda values per circuit)");
    Ok(())
}
