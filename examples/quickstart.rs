//! Quickstart: build a tiny design programmatically, run a flow through the
//! unified `Placer` engine API, print the macro placement and write it out
//! as DEF.
//!
//! Run with: `cargo run --release --example quickstart`

use geometry::Rect;
use netlist::design::DesignBuilder;
use placer_core::{PlaceContext, PlaceRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature design: two RAM banks exchanging data through a 16-bit
    // register pipeline in a glue module.
    let mut b = DesignBuilder::new("quickstart");
    let ram0 = b.add_macro("u_core/ram0", "RAM512", 250_000, 180_000, "u_core");
    let ram1 = b.add_macro("u_mem/ram1", "RAM512", 250_000, 180_000, "u_mem");
    for bit in 0..16 {
        let f = b.add_flop(format!("u_glue/pipe_reg[{bit}]"), "u_glue");
        let to_pipe = b.add_net(format!("u_glue/d[{bit}]"));
        let from_pipe = b.add_net(format!("u_glue/q[{bit}]"));
        b.connect_driver(to_pipe, ram0);
        b.connect_sink(to_pipe, f);
        b.connect_driver(from_pipe, f);
        b.connect_sink(from_pipe, ram1);
    }
    b.set_die(Rect::new(0, 0, 1_200_000, 900_000));
    let design = b.build();

    // Resolve the flow by name through the registry (any of "hidap",
    // "indeda", "handfp") and place through the engine API.
    let registry = baselines::default_registry();
    let placer = registry.create("hidap")?;
    let request = PlaceRequest::new(&design).with_seed(1).with_lambda(0.5);
    let outcome = placer.place(&request, &mut PlaceContext::new())?;
    let placement = &outcome.placement;

    println!("placed {} macros (legal: {}):", placement.macros.len(), placement.is_legal(&design));
    for placed in &placement.macros {
        let cell = design.cell(placed.cell);
        println!(
            "  {:<16} at ({:>8}, {:>8})  orientation {}",
            cell.name, placed.location.x, placed.location.y, placed.orientation
        );
    }
    println!("\nstage timings:");
    for timing in &outcome.stage_timings {
        println!("  {:<12} {:.4} s", timing.stage, timing.seconds);
    }

    // Export the floorplan as DEF, ready for a downstream place-and-route tool.
    let entries = netlist::def::placement_entries_from_view(&design, placement, true);
    let pins = netlist::def::port_entries(&design);
    let def_text = netlist::def::write_def(design.name(), 1000, design.die(), &entries, &pins);
    println!("\n--- floorplan.def ---\n{def_text}");
    Ok(())
}
