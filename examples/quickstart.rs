//! Quickstart: build a tiny design programmatically, run HiDaP, print the
//! macro placement and write it out as DEF.
//!
//! Run with: `cargo run --release -p bench --example quickstart`

use geometry::Rect;
use hidap::{HidapConfig, HidapFlow};
use netlist::design::DesignBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature design: two RAM banks exchanging data through a 16-bit
    // register pipeline in a glue module.
    let mut b = DesignBuilder::new("quickstart");
    let ram0 = b.add_macro("u_core/ram0", "RAM512", 250_000, 180_000, "u_core");
    let ram1 = b.add_macro("u_mem/ram1", "RAM512", 250_000, 180_000, "u_mem");
    for bit in 0..16 {
        let f = b.add_flop(format!("u_glue/pipe_reg[{bit}]"), "u_glue");
        let to_pipe = b.add_net(format!("u_glue/d[{bit}]"));
        let from_pipe = b.add_net(format!("u_glue/q[{bit}]"));
        b.connect_driver(to_pipe, ram0);
        b.connect_sink(to_pipe, f);
        b.connect_driver(from_pipe, f);
        b.connect_sink(from_pipe, ram1);
    }
    b.set_die(Rect::new(0, 0, 1_200_000, 900_000));
    let design = b.build();

    // Run the placer. `HidapConfig::default()` uses the paper's declustering
    // fractions and a medium annealing effort.
    let placement = HidapFlow::new(HidapConfig::default().with_lambda(0.5)).run(&design)?;

    println!("placed {} macros (legal: {}):", placement.macros.len(), placement.is_legal(&design));
    for placed in &placement.macros {
        let cell = design.cell(placed.cell);
        println!(
            "  {:<16} at ({:>8}, {:>8})  orientation {}",
            cell.name, placed.location.x, placed.location.y, placed.orientation
        );
    }

    // Export the floorplan as DEF, ready for a downstream place-and-route tool.
    let entries = netlist::def::placement_entries(&design, &placement.to_map(), true);
    let pins = netlist::def::port_entries(&design);
    let def_text = netlist::def::write_def(design.name(), 1000, design.die(), &entries, &pins);
    println!("\n--- floorplan.def ---\n{def_text}");
    Ok(())
}
