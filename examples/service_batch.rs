//! Multi-design batch placement through one `PlacementService`.
//!
//! Interns two workload presets into a shared `DesignStore`, submits a
//! heterogeneous pair of jobs (different designs × flows), drains the queue
//! and prints each job's metrics plus the store's artifact-cache statistics.
//! Submitting a design a second time reuses its interned handle and its
//! cached sequential graph — the service call shape for batch endpoints
//! placing several netlists through one engine.
//!
//! ```text
//! cargo run --release --example service_batch
//! ```

use eval::EvalConfig;
use placer_core::{EffortLevel, PlaceJob, PlacementService};
use workload::presets::{fig1_design, fig3_design};

fn main() {
    let mut service = PlacementService::new(baselines::default_registry());

    // Intern both presets: each design gets a cheap copyable handle, its CSR
    // connectivity is built once, and its derived graphs (Gnet, Gseq) will
    // live in the store's byte-budgeted artifact cache shared by every job.
    let fig1 = service.intern(fig1_design().design);
    let fig3 = service.intern(fig3_design());

    // Heterogeneous jobs through one queue: the paper's flow on one design,
    // the flat baseline on the other, plus a λ sweep revisiting the first
    // design (its cached artifacts are reused, its winner stays
    // deterministic regardless of queue order).
    let jobs = [
        service.submit(
            PlaceJob::new(fig1, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        ),
        service.submit(
            PlaceJob::new(fig3, "indeda")
                .with_effort(EffortLevel::Fast)
                .with_evaluation(EvalConfig::standard()),
        ),
        service.submit(
            PlaceJob::new(fig1, "hidap")
                .with_effort(EffortLevel::Fast)
                .with_seeds(vec![1, 2])
                .with_lambdas(vec![0.2, 0.8])
                .with_evaluation(EvalConfig::standard()),
        ),
    ];

    let ran = service.run_all();
    println!("service drained {ran} jobs\n");

    for job in jobs {
        let result = service.take_result(job).expect("job ran").expect("job succeeded");
        let design = service.store().design(result.design);
        let outcome = &result.outcome;
        println!(
            "job {:>2}  {:<6} {:<6} seed {} ({} run{})",
            result.job.0,
            design.name(),
            outcome.flow,
            outcome.seed,
            result.runs.len(),
            if result.runs.len() == 1 { "" } else { "s" },
        );
        println!(
            "         {} macros, legal: {}",
            outcome.placement.macros.len(),
            outcome.placement.is_legal(design),
        );
        if let Some(metrics) = &outcome.metrics {
            println!(
                "         wirelength {:.4} m, GRC {:.2}%, WNS {:.2}%",
                metrics.wirelength_m,
                metrics.grc_percent(),
                metrics.wns_percent(),
            );
        }
    }

    let store = service.store();
    let stats = store.artifacts().stats();
    println!(
        "\nstore: {} designs interned; Gseq {} built, {} reused; Gnet {} built, {} reused; \
         {:.1} MiB resident",
        store.len(),
        stats.seq.misses,
        stats.seq.hits,
        stats.net.misses,
        stats.net.hits,
        store.resident_bytes() as f64 / (1u64 << 20) as f64,
    );
}
