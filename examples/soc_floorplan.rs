//! Floorplan a full synthetic SoC (the c1 stand-in) with two flows and
//! compare the measured metrics — a miniature version of Table III.
//!
//! Run with: `cargo run --release -p bench --example soc_floorplan`

use baselines::{IndEda, IndEdaConfig};
use eval::{EvalConfig, Evaluator};
use hidap::{HidapConfig, HidapFlow};
use workload::presets::generate_circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate_circuit("c1");
    let design = &generated.design;
    println!(
        "circuit c1 stand-in: {} cells, {} macros, die {}x{} um",
        design.num_cells(),
        design.num_macros(),
        design.die().width() / 1000,
        design.die().height() / 1000,
    );

    // One evaluation session measures every flow: the sequential graph
    // is built once and reused across candidates.
    let mut evaluator = Evaluator::new(EvalConfig::standard());

    // Flow 1: the flat connectivity-driven baseline (IndEDA stand-in).
    let indeda = IndEda::new(IndEdaConfig::default()).run(design)?;
    let indeda_metrics = evaluator.evaluate(design, &indeda);

    // Flow 2: HiDaP with the default λ.
    let hidap = HidapFlow::new(HidapConfig::default()).run(design)?;
    let hidap_metrics = evaluator.evaluate(design, &hidap);

    println!("\n{:<10} {:>12} {:>10} {:>10} {:>12}", "flow", "WL (m)", "GRC%", "WNS%", "TNS (ns)");
    for (name, m) in [("IndEDA", &indeda_metrics), ("HiDaP", &hidap_metrics)] {
        println!(
            "{:<10} {:>12.3} {:>10.2} {:>10.2} {:>12.1}",
            name,
            m.wirelength_m,
            m.grc_percent(),
            m.wns_percent(),
            m.tns_ns()
        );
    }

    println!("\ntop-level block floorplan found by HiDaP:");
    for (name, rect) in &hidap.top_blocks {
        println!("  {:<20} {}", name, rect);
    }
    Ok(())
}
