//! Exercise the file-format path: generate a synthetic SoC, emit it as
//! structural Verilog + LEF, parse both back, place the macros with HiDaP and
//! write/re-read the floorplan DEF.
//!
//! Run with: `cargo run --release -p bench --example def_roundtrip`

use hidap::{HidapConfig, HidapFlow};
use netlist::def::parse_def;
use netlist::lef::parse_lef;
use netlist::verilog::{parse_verilog, ElaborateOptions};
use workload::emit::{emit_def, emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a small SoC.
    let generated = SocGenerator::new(SocConfig {
        name: "roundtrip_soc".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 3, 8),
            SubsystemConfig::balanced("u_dsp", 2, 8),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 8,
        utilization: 0.5,
        aspect_ratio: 1.2,
        seed: 42,
    })
    .generate();

    // Emit Verilog + LEF text.
    let verilog_text = emit_verilog(&generated.design);
    let lef_text = emit_lef(&generated.design, &generated.library, 1000);
    println!("emitted {} bytes of Verilog, {} bytes of LEF", verilog_text.len(), lef_text.len());

    // Parse them back through the netlist crate's parsers.
    let lef = parse_lef(&lef_text)?;
    let opts = ElaborateOptions { library: lef.library.clone(), ..Default::default() };
    let mut design = parse_verilog(&verilog_text, Some("roundtrip_soc"), &opts)?;
    design.set_die(generated.design.die());
    for (pid, port) in generated.design.ports() {
        if let (Some(pos), Some(new_pid)) =
            (port.position, design.find_port(&generated.design.port(pid).name))
        {
            design.port_mut(new_pid).position = Some(pos);
        }
    }
    println!(
        "re-parsed design: {} cells ({} macros), {} nets",
        design.num_cells(),
        design.num_macros(),
        design.num_nets()
    );
    assert_eq!(design.num_macros(), generated.design.num_macros());

    // Place the macros of the re-parsed design and write the floorplan DEF.
    let placement = HidapFlow::new(HidapConfig::default()).run(&design)?;
    let def_text = emit_def(&design, 1000, &placement.to_map());
    let def = parse_def(&def_text)?;
    println!("floorplan DEF round trip: {} components, die {}", def.components.len(), def.die);
    assert_eq!(def.components.len(), design.num_macros());
    println!("round trip OK");
    Ok(())
}
