//! Emit a synthetic SoC as structural Verilog + LEF, ready to feed the
//! `hidap` command-line tool:
//!
//! ```text
//! cargo run --release --example emit_workload -- /tmp/soc
//! target/release/hidap --verilog /tmp/soc.v --lef /tmp/soc.lef --top emitted_soc \
//!     --sweep --jobs 0 --report
//! ```

use workload::emit::{emit_lef, emit_verilog};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prefix = std::env::args().nth(1).unwrap_or_else(|| "emitted_soc".to_string());
    let generated = SocGenerator::new(SocConfig {
        name: "emitted_soc".into(),
        subsystems: vec![
            SubsystemConfig::balanced("u_cpu", 4, 16),
            SubsystemConfig::balanced("u_dsp", 4, 16),
        ],
        channels: vec![(0, 1), (1, 0)],
        io_subsystems: vec![0],
        io_bits: 16,
        utilization: 0.5,
        aspect_ratio: 1.0,
        seed: 7,
    })
    .generate();
    let verilog_path = format!("{prefix}.v");
    let lef_path = format!("{prefix}.lef");
    std::fs::write(&verilog_path, emit_verilog(&generated.design))?;
    std::fs::write(&lef_path, emit_lef(&generated.design, &generated.library, 1000))?;
    println!(
        "wrote {verilog_path} ({} macros, {} cells) and {lef_path}",
        generated.design.num_macros(),
        generated.design.num_cells()
    );
    Ok(())
}
