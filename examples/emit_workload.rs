//! Emit a synthetic SoC as structural Verilog + LEF, ready to feed the
//! `hidap` command-line tool:
//!
//! ```text
//! cargo run --release --example emit_workload -- /tmp/soc
//! cargo run --release --example emit_workload -- /tmp/big --preset large_soc
//! target/release/hidap --verilog /tmp/soc.v --lef /tmp/soc.lef --top emitted_soc \
//!     --sweep --jobs 0 --report
//! ```
//!
//! `--preset large_soc` emits the ~100k-cell, 200-macro scale preset that
//! exercises the dense data plane; `--preset mega_soc` emits the ~1M-cell,
//! 2400-macro scale preset (see `docs/SCALING.md`); the default is a small
//! two-subsystem SoC.

use workload::emit::{emit_lef, emit_verilog};
use workload::presets::{large_soc, mega_soc};
use workload::{SocConfig, SocGenerator, SubsystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut prefix = "emitted_soc".to_string();
    let mut preset: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--preset" => {
                let Some(value) = args.get(i + 1) else {
                    return Err("--preset requires a value (e.g. large_soc)".into());
                };
                preset = Some(value.clone());
                i += 2;
            }
            other => {
                prefix = other.to_string();
                i += 1;
            }
        }
    }

    let generated = match preset.as_deref() {
        Some("large_soc") => large_soc(),
        Some("mega_soc") => mega_soc(),
        Some(other) => return Err(format!("unknown preset '{other}'").into()),
        None => SocGenerator::new(SocConfig {
            name: "emitted_soc".into(),
            subsystems: vec![
                SubsystemConfig::balanced("u_cpu", 4, 16),
                SubsystemConfig::balanced("u_dsp", 4, 16),
            ],
            channels: vec![(0, 1), (1, 0)],
            io_subsystems: vec![0],
            io_bits: 16,
            utilization: 0.5,
            aspect_ratio: 1.0,
            seed: 7,
        })
        .generate(),
    };
    let verilog_path = format!("{prefix}.v");
    let lef_path = format!("{prefix}.lef");
    std::fs::write(&verilog_path, emit_verilog(&generated.design))?;
    std::fs::write(&lef_path, emit_lef(&generated.design, &generated.library, 1000))?;
    println!(
        "wrote {verilog_path} ({} macros, {} cells) and {lef_path}",
        generated.design.num_macros(),
        generated.design.num_cells()
    );
    Ok(())
}
