//! Inspect the circuit abstractions HiDaP builds: the hierarchy tree, the
//! sequential graph `Gseq` and the dataflow graph `Gdf` with its block-flow
//! and macro-flow affinities (the analysis behind Fig. 2 / Fig. 7 / Fig. 9d).
//!
//! Run with: `cargo run --release -p bench --example dataflow_analysis`

use graphs::seqgraph::SeqGraphConfig;
use graphs::SeqGraph;
use hidap::dataflow::dataflow_inference;
use hidap::decluster::hierarchical_declustering;
use hidap::shape_curves::ShapeCurveSet;
use hidap::HidapConfig;
use netlist::hierarchy::HierarchyTree;
use workload::presets::fig3_design;

fn main() {
    // The four-block system of Fig. 2/3: A feeds B and C, B and C feed D,
    // all through registers in the standard-cell hub X.
    let design = fig3_design();
    let config = HidapConfig::default();

    let ht = HierarchyTree::from_design(&design);
    println!("hierarchy tree ({} levels):", ht.len());
    for (_, node) in ht.iter() {
        let name = if node.path.is_empty() { "<top>" } else { node.path.as_str() };
        println!(
            "  {:<12} area={:<14} macros={:<3} cells={}",
            name, node.subtree_area, node.subtree_macros, node.subtree_cells
        );
    }

    let gseq = SeqGraph::from_design(&design, &SeqGraphConfig { min_register_bits: 1 });
    println!("\nGseq: {} nodes, {} edges", gseq.num_nodes(), gseq.num_edges());
    for (_, node) in gseq.iter() {
        println!("  {:?} {:<22} width={}", node.kind, node.name, node.width);
    }

    // Decluster the top level and build the dataflow graph.
    let curves = ShapeCurveSet::generate(&design, &ht, &config);
    let mut blocks = hierarchical_declustering(&design, &ht, &curves, ht.root(), &config);
    let gnet = graphs::NetGraph::from_design(&design);
    hidap::target_area::target_area_assignment(&design, &gnet, &mut blocks, &config);
    let df = dataflow_inference(&design, &gseq, &blocks, &[], &config);

    println!("\ndataflow nodes:");
    for idx in 0..df.graph.num_nodes() {
        println!("  [{idx}] {}", df.graph.node(idx).name());
    }

    for (label, lambda) in
        [("block flow only (lambda=1.0)", 1.0), ("macro flow only (lambda=0.0)", 0.0)]
    {
        println!("\naffinity matrix, {label}:");
        let m = df.graph.affinity_matrix(lambda, config.score_k);
        print!("{:>14}", "");
        for j in 0..m.len() {
            print!("{:>10}", df.graph.node(j).name());
        }
        println!();
        for i in 0..m.len() {
            print!("{:>14}", df.graph.node(i).name());
            for v in m.row(i) {
                print!("{:>10.1}", v);
            }
            println!();
        }
    }
}
